package runtime

import (
	"context"
	"testing"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/tensor"
)

// prefixVal is the synthetic, token-determined cell value the prefix-store
// tests fill K/V matrices with: any aliasing of two distinct prefixes shows
// up as a mismatched cell, not just a wrong length.
func prefixVal(tok, layer, col int, isV bool) float32 {
	v := float32(tok)*1000 + float32(layer)*100 + float32(col)*10
	if isV {
		v++
	}
	return v
}

// insertPrefix pushes every full block of prompt into the store through the
// candidate path, filling K/V rows from prefixVal. Returns blocks inserted.
func insertPrefix(t *testing.T, ps *PrefixStore, prompt []int) int {
	t.Helper()
	matched := ps.MatchTokens(prompt, len(prompt))
	c := ps.NewCandidate(prompt, matched)
	if c == nil {
		return 0
	}
	for l := 0; l < ps.layers; l++ {
		k := tensor.New(len(prompt), ps.hidden)
		v := tensor.New(len(prompt), ps.hidden)
		for r := 0; r < len(prompt); r++ {
			for col := 0; col < ps.hidden; col++ {
				k.Row(r)[col] = prefixVal(prompt[r], l, col, false)
				v.Row(r)[col] = prefixVal(prompt[r], l, col, true)
			}
		}
		c.CaptureLayer(l, k, v)
	}
	ins, _ := ps.Commit(c)
	return ins
}

// checkSeed verifies a pinned match's seeded rows carry exactly the values
// the prompt's own tokens were inserted with.
func checkSeed(t *testing.T, ps *PrefixStore, m *PrefixMatch, prompt []int) {
	t.Helper()
	for l := 0; l < ps.layers; l++ {
		k, v := m.SeedLayer(l)
		for r := 0; r < m.Tokens(); r++ {
			for col := 0; col < ps.hidden; col++ {
				if got, want := k.Row(r)[col], prefixVal(prompt[r], l, col, false); got != want {
					t.Fatalf("layer %d K row %d col %d = %g, want %g (aliased prefix)", l, r, col, got, want)
				}
				if got, want := v.Row(r)[col], prefixVal(prompt[r], l, col, true); got != want {
					t.Fatalf("layer %d V row %d col %d = %g, want %g (aliased prefix)", l, r, col, got, want)
				}
			}
		}
	}
}

func TestPrefixStoreAcquireSeedsExactRows(t *testing.T) {
	ps, err := NewPrefixStore(1<<20, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6, 5, 3} // 2 full blocks + 2 spare
	if ins := insertPrefix(t, ps, prompt); ins != 2 {
		t.Fatalf("inserted %d blocks, want 2", ins)
	}
	m := ps.Acquire(prompt, len(prompt)-1)
	if m == nil {
		t.Fatal("acquire missed a cached prefix")
	}
	if m.Tokens() != 8 {
		t.Fatalf("matched %d tokens, want 8", m.Tokens())
	}
	checkSeed(t, ps, m, prompt)
	m.Release()
	m.Release() // idempotent
	if n := ps.refsTotal(); n != 0 {
		t.Fatalf("%d refs leaked after release", n)
	}
	st := ps.Stats()
	if st.Hits != 1 || st.Inserts != 2 || st.ReusedTokens != 8 {
		t.Errorf("stats = %+v, want 1 hit, 2 inserts, 8 reused", st)
	}
}

// TestPrefixStoreNoAliasing: prompts sharing a first block but diverging in
// the second must each seed their own tokens' values, and a prompt diverging
// inside block 0 must not match at all.
func TestPrefixStoreNoAliasing(t *testing.T) {
	ps, err := NewPrefixStore(1<<20, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := []int{1, 2, 3, 4, 10, 11, 12, 13}
	b := []int{1, 2, 3, 4, 20, 21, 22, 23}
	insertPrefix(t, ps, a)
	insertPrefix(t, ps, b)
	for _, p := range [][]int{a, b} {
		m := ps.Acquire(p, len(p))
		if m == nil || m.Tokens() != 8 {
			t.Fatalf("prompt %v matched %v, want 8 tokens", p, m)
		}
		checkSeed(t, ps, m, p)
		m.Release()
	}
	if got := ps.MatchTokens([]int{1, 2, 3, 99, 10, 11, 12, 13}, 8); got != 0 {
		t.Fatalf("mid-block divergence matched %d tokens, want 0", got)
	}
	if got := ps.Blocks(); got != 3 {
		t.Errorf("store holds %d blocks, want 3 (shared first block deduped)", got)
	}
}

// TestPrefixStorePinsBlockEviction: pinned chains survive both the insert
// path's make-room sweep and EvictUnreferenced; releasing the pins makes the
// whole chain reclaimable leaf-first.
func TestPrefixStorePinsBlockEviction(t *testing.T) {
	ps, err := NewPrefixStore(512, 4, 2, 4) // exactly 2 blocks of 256 B
	if err != nil {
		t.Fatal(err)
	}
	a := []int{1, 1, 1, 1, 2, 2, 2, 2}
	if ins := insertPrefix(t, ps, a); ins != 2 {
		t.Fatalf("inserted %d, want 2", ins)
	}
	m := ps.Acquire(a, len(a))
	if m == nil || m.Tokens() != 8 {
		t.Fatal("acquire failed")
	}
	if n := ps.EvictUnreferenced(); n != 0 {
		t.Fatalf("evicted %d pinned blocks", n)
	}
	b := []int{5, 5, 5, 5, 6, 6, 6, 6}
	if ins := insertPrefix(t, ps, b); ins != 0 {
		t.Fatalf("insert displaced %d pinned blocks", ins)
	}
	m.Release()
	if n := ps.EvictUnreferenced(); n != 2 {
		t.Fatalf("evicted %d after release, want 2", n)
	}
	if used, blocks := ps.UsedBytes(), ps.Blocks(); used != 0 || blocks != 0 {
		t.Fatalf("store not empty after eviction: %d bytes, %d blocks", used, blocks)
	}
}

// TestPrefixStoreLRUEviction: the insert path's make-room sweep takes the
// least-recently-used unpinned block.
func TestPrefixStoreLRUEviction(t *testing.T) {
	ps, err := NewPrefixStore(256, 4, 1, 4) // exactly 2 blocks of 128 B
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := []int{1, 2, 3, 4}, []int{5, 6, 7, 8}, []int{9, 10, 11, 12}
	insertPrefix(t, ps, a)
	insertPrefix(t, ps, b)
	ps.Acquire(a, len(a)).Release() // touch a: b becomes the LRU victim
	if ins := insertPrefix(t, ps, c); ins != 1 {
		t.Fatalf("inserted %d, want 1", ins)
	}
	if got := ps.MatchTokens(a, 4); got != 4 {
		t.Errorf("recently-touched block evicted (a matches %d)", got)
	}
	if got := ps.MatchTokens(b, 4); got != 0 {
		t.Errorf("LRU block survived (b matches %d)", got)
	}
	if got := ps.MatchTokens(c, 4); got != 4 {
		t.Errorf("new block missing (c matches %d)", got)
	}
	if st := ps.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestPrefixStoreRejectsPartialCapture: a candidate whose prefill attempt
// aborted before every layer was captured must not poison the cache.
func TestPrefixStoreRejectsPartialCapture(t *testing.T) {
	ps, err := NewPrefixStore(1<<20, 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	prompt := []int{1, 2, 3, 4}
	c := ps.NewCandidate(prompt, 0)
	k := tensor.New(4, 4)
	v := tensor.New(4, 4)
	c.CaptureLayer(0, k, v) // layer 1 never captured
	if ins, _ := ps.Commit(c); ins != 0 {
		t.Fatalf("partial capture inserted %d blocks", ins)
	}
	if ps.Blocks() != 0 || ps.UsedBytes() != 0 {
		t.Fatal("partial capture left state behind")
	}
}

// sessionGenerate serves prompts sequentially through one single-slot session
// (so later prompts can hit prefixes cached by earlier ones) and returns each
// prompt's generated tokens.
func sessionGenerate(t *testing.T, pol Policy, ps *PrefixStore, quantKV bool, prompts [][]int, genLen int) [][]int {
	t.Helper()
	eng, err := NewEngine(tinyModel(t, 42), pol, bigArena, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		t.Fatal(err)
	}
	if ps != nil {
		sess.UsePrefixStore(ps)
	}
	if quantKV {
		if err := sess.SetQuantizeNewSlots(true, quant.Config{Bits: 4, GroupSize: 32}); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	var outs [][]int
	for _, prompt := range prompts {
		tok, err := sess.AdmitKV(ctx, 0, prompt, quantKV)
		if err != nil {
			t.Fatal(err)
		}
		out := []int{tok}
		for len(out) < genLen {
			toks, err := sess.Step(ctx)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, toks[0].Token)
		}
		sess.Retire(0)
		outs = append(outs, out)
	}
	return outs
}

// TestSessionPrefixReuseExactAcrossModes: serving with the prefix store on
// must be token-identical to serving without it, in every KV storage mode —
// staged raw, host-resident (CPU attention), and quantized slots. The store
// holds raw prefill rows, which is what live attention reads in all three
// modes, so reuse cannot perturb a single token.
func TestSessionPrefixReuseExactAcrossModes(t *testing.T) {
	shared := make([]int, 32)
	for i := range shared {
		shared[i] = (i*7 + 3) % model.Tiny().Vocab
	}
	promptA := append(append([]int(nil), shared...), 7, 8, 9, 10)
	promptB := append(append([]int(nil), shared...), 11, 12, 13)
	prompts := [][]int{promptA, promptB, promptB}
	const genLen = 6

	modes := []struct {
		name    string
		pol     Policy
		quantKV bool
	}{
		{"staged-raw", Policy{IntraOp: 1}, false},
		{"host-attn", Policy{IntraOp: 1, AttnOnCPU: true}, false},
		{"quantized", Policy{IntraOp: 1}, true},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			ps, err := NewPrefixStore(4<<20, 8, model.Tiny().Layers, model.Tiny().Hidden)
			if err != nil {
				t.Fatal(err)
			}
			warm := sessionGenerate(t, mode.pol, ps, mode.quantKV, prompts, genLen)
			cold := sessionGenerate(t, mode.pol, nil, mode.quantKV, prompts, genLen)
			for i := range prompts {
				for j := range cold[i] {
					if warm[i][j] != cold[i][j] {
						t.Fatalf("prompt %d token %d: reuse %d != cold %d (reuse changed output)",
							i, j, warm[i][j], cold[i][j])
					}
				}
			}
			st := ps.Stats()
			if st.Hits < 2 {
				t.Errorf("stats %+v: want >= 2 hits (B shares A's prefix, then hits its own)", st)
			}
			if st.ReusedTokens == 0 || st.Inserts == 0 {
				t.Errorf("stats %+v: reuse never engaged", st)
			}
			if n := ps.refsTotal(); n != 0 {
				t.Errorf("%d refs leaked after all slots retired", n)
			}
		})
	}
}

// FuzzPrefixLookup: for arbitrary prompt pairs and block sizes, a lookup may
// only ever return the prompt's own prefix values (hash collisions must not
// alias distinct prefixes), matches respect the token cap and block
// granularity, and refcounts return to zero after release.
func FuzzPrefixLookup(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 1, 2, 3, 4}, []byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{9, 9, 9}, []byte{9, 9, 9, 9, 9, 9}, uint8(1))
	f.Add([]byte{0, 0, 0, 0}, []byte{}, uint8(2))
	f.Fuzz(func(t *testing.T, rawA, rawB []byte, blockRaw uint8) {
		block := int(blockRaw%8) + 1
		const maxLen = 64
		toTokens := func(raw []byte) []int {
			if len(raw) > maxLen {
				raw = raw[:maxLen]
			}
			toks := make([]int, len(raw))
			for i, x := range raw {
				toks[i] = int(x)
			}
			return toks
		}
		a, b := toTokens(rawA), toTokens(rawB)
		ps, err := NewPrefixStore(1<<20, block, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		insertPrefix(t, ps, a)
		insertPrefix(t, ps, b)
		for _, p := range [][]int{a, b} {
			if len(p) == 0 {
				continue
			}
			m := ps.Acquire(p, len(p)-1)
			if m == nil {
				continue
			}
			if m.Tokens() > len(p)-1 {
				t.Fatalf("matched %d tokens past the cap %d", m.Tokens(), len(p)-1)
			}
			if m.Tokens()%block != 0 {
				t.Fatalf("matched %d tokens off block granularity %d", m.Tokens(), block)
			}
			checkSeed(t, ps, m, p)
			m.Release()
			m.Release()
		}
		if n := ps.refsTotal(); n != 0 {
			t.Fatalf("%d refs leaked", n)
		}
	})
}
