// Package runtime is the functional offloading engine: it runs a *real*
// transformer (internal/model) through FlexGen's zig-zag schedule with the
// six asynchronous tasks of Algorithm 1, a capacity-enforced GPU memory
// arena, quantized CPU-side tensor storage, and full I/O byte accounting.
//
// The engine is the executable ground truth for the analytical layer: its
// transfers match the perfmodel's traffic equations, its quantization calls
// are the real bit-packing kernels from internal/quant, and its outputs are
// checked against the unoffloaded reference model.
package runtime

import (
	"errors"
	"fmt"
	"sync"
)

// ErrArenaUnderflow reports a Free that would release more bytes than are
// allocated. Rollback paths can race a pipeline drain into double-freeing a
// staged buffer; the arena reports that as an error so a serving process
// keeps running with the discrepancy accounted, instead of crashing.
var ErrArenaUnderflow = errors.New("runtime: arena free underflow")

// Arena tracks allocations against a fixed capacity, standing in for a
// device memory pool. It is safe for concurrent use by the asynchronous
// tasks.
type Arena struct {
	name     string
	capacity int64

	mu     sync.Mutex
	used   int64
	peak   int64
	strict bool
}

// NewArena creates a pool with the given byte capacity.
func NewArena(name string, capacity int64) (*Arena, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("runtime: arena %q capacity must be positive, got %d", name, capacity)
	}
	return &Arena{name: name, capacity: capacity}, nil
}

// Alloc reserves n bytes, failing when the pool would overflow — the
// functional equivalent of CUDA OOM.
func (a *Arena) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("runtime: negative allocation %d on arena %q", n, a.name)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.used+n > a.capacity {
		return fmt.Errorf("runtime: arena %q out of memory: %d used + %d requested > %d capacity",
			a.name, a.used, n, a.capacity)
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Free releases n bytes. Releasing more than allocated (or a negative
// count) is a programming error: it returns a wrapped ErrArenaUnderflow and
// leaves the accounting untouched, except in strict mode (tests) where it
// panics so invariant violations fail loudly at the call site.
func (a *Arena) Free(n int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n < 0 || n > a.used {
		if a.strict {
			panic(fmt.Sprintf("runtime: arena %q freeing %d with only %d allocated", a.name, n, a.used))
		}
		return fmt.Errorf("%w: arena %q freeing %d with only %d allocated", ErrArenaUnderflow, a.name, n, a.used)
	}
	a.used -= n
	return nil
}

// SetStrict toggles panic-on-underflow for Free. Production call sites run
// non-strict and handle the returned error; tests enable strict mode to keep
// the underflow panic as a guarded invariant.
func (a *Arena) SetStrict(strict bool) {
	a.mu.Lock()
	a.strict = strict
	a.mu.Unlock()
}

// Used returns the current allocation.
func (a *Arena) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark.
func (a *Arena) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Capacity returns the configured limit.
func (a *Arena) Capacity() int64 { return a.capacity }
