package runtime

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/faults"
)

// RetryConfig bounds the engine's retry loop for transient transfer faults.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per operation (>= 1).
	MaxAttempts int
	// BaseBackoff is the delay ceiling before the first retry; each
	// subsequent retry doubles it. Zero disables backoff sleeps (useful in
	// tests).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled delay (0 = uncapped).
	MaxBackoff time.Duration
	// Jitter selects full-jitter backoff: each sleep is drawn uniformly from
	// (0, d] where d is the exponential delay. Without it every replica that
	// observes the same fault window retries in lockstep — a thundering herd
	// against the shared link at cluster scale.
	Jitter bool
	// Rand overrides the jitter source with a deterministic one (tests).
	// Nil uses math/rand's goroutine-safe global source. Ignored unless
	// Jitter is set; the BaseBackoff==0 no-sleep path never draws from it,
	// so zero-backoff tests stay byte-deterministic either way.
	Rand func() float64
}

// DefaultRetryConfig retries transient faults three times with a short
// full-jitter exponential backoff — enough to absorb injected transfer
// failures without stretching a degraded run, and decorrelated so a fleet of
// replicas sharing a fault window does not retry in phase.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond, Jitter: true}
}

// delay returns the sleep before retry `attempt` (1-based): the exponential
// ceiling min(MaxBackoff, BaseBackoff<<(attempt-1)), jittered to a uniform
// draw from (0, ceiling] when Jitter is on. Zero BaseBackoff stays zero.
func (rc RetryConfig) delay(attempt int) time.Duration {
	if rc.BaseBackoff <= 0 || attempt < 1 {
		return 0
	}
	d := rc.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if rc.MaxBackoff > 0 && d >= rc.MaxBackoff {
			d = rc.MaxBackoff
			break
		}
	}
	if rc.MaxBackoff > 0 && d > rc.MaxBackoff {
		d = rc.MaxBackoff
	}
	if !rc.Jitter {
		return d
	}
	rnd := rc.Rand
	if rnd == nil {
		rnd = rand.Float64
	}
	// Uniform over (0, d]: 1-rnd() is in (0, 1], so two replicas with the
	// same ceiling sleep different amounts and a zero sleep (which would
	// hammer the faulted resource immediately) cannot be drawn.
	return time.Duration((1 - rnd()) * float64(d))
}

// Validate reports malformed configurations.
func (rc RetryConfig) Validate() error {
	if rc.MaxAttempts < 1 {
		return fmt.Errorf("runtime: retry attempts must be >= 1, got %d", rc.MaxAttempts)
	}
	if rc.BaseBackoff < 0 || rc.MaxBackoff < 0 {
		return fmt.Errorf("runtime: negative backoff (%v, %v)", rc.BaseBackoff, rc.MaxBackoff)
	}
	return nil
}

// withRetry runs op, retrying transient faults (faults.IsTransient) up to the
// configured attempt budget with exponential backoff. Non-transient errors
// and context cancellation return immediately. Successful retries are counted
// as cleared faults; the final failure is wrapped with the operation name.
func (e *Engine) withRetry(ctx context.Context, name string, op func() error) error {
	rc := e.retry
	if rc.MaxAttempts < 1 {
		rc.MaxAttempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op()
		if err == nil {
			if attempt > 1 {
				e.stats.addCleared(1)
			}
			return nil
		}
		if ctx.Err() != nil || !faults.IsTransient(err) || attempt >= rc.MaxAttempts {
			break
		}
		e.stats.addRetry(name)
		if d := rc.delay(attempt); d > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return fmt.Errorf("runtime: %s failed: %w", name, err)
}

// stallOrFail models a transfer through the fault injector: an injected
// stall delays the operation (respecting cancellation), then the site may
// fail transiently.
func (e *Engine) stallOrFail(ctx context.Context, site faults.Site) error {
	if d := e.faults.StallFor(site); d > 0 {
		e.stats.addTask("fault_stall", d)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	return e.faults.Fail(site)
}
