package runtime

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faults"
)

// RetryConfig bounds the engine's retry loop for transient transfer faults.
type RetryConfig struct {
	// MaxAttempts is the total number of tries per operation (>= 1).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each subsequent retry
	// doubles it. Zero disables backoff sleeps (useful in tests).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubled delay (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetryConfig retries transient faults three times with a short
// exponential backoff — enough to absorb injected transfer failures without
// stretching a degraded run.
func DefaultRetryConfig() RetryConfig {
	return RetryConfig{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}
}

// Validate reports malformed configurations.
func (rc RetryConfig) Validate() error {
	if rc.MaxAttempts < 1 {
		return fmt.Errorf("runtime: retry attempts must be >= 1, got %d", rc.MaxAttempts)
	}
	if rc.BaseBackoff < 0 || rc.MaxBackoff < 0 {
		return fmt.Errorf("runtime: negative backoff (%v, %v)", rc.BaseBackoff, rc.MaxBackoff)
	}
	return nil
}

// withRetry runs op, retrying transient faults (faults.IsTransient) up to the
// configured attempt budget with exponential backoff. Non-transient errors
// and context cancellation return immediately. Successful retries are counted
// as cleared faults; the final failure is wrapped with the operation name.
func (e *Engine) withRetry(ctx context.Context, name string, op func() error) error {
	rc := e.retry
	if rc.MaxAttempts < 1 {
		rc.MaxAttempts = 1
	}
	backoff := rc.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op()
		if err == nil {
			if attempt > 1 {
				e.stats.addCleared(1)
			}
			return nil
		}
		if ctx.Err() != nil || !faults.IsTransient(err) || attempt >= rc.MaxAttempts {
			break
		}
		e.stats.addRetry(name)
		if backoff > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
			if rc.MaxBackoff > 0 && backoff > rc.MaxBackoff {
				backoff = rc.MaxBackoff
			}
		}
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return fmt.Errorf("runtime: %s failed: %w", name, err)
}

// stallOrFail models a transfer through the fault injector: an injected
// stall delays the operation (respecting cancellation), then the site may
// fail transiently.
func (e *Engine) stallOrFail(ctx context.Context, site faults.Site) error {
	if d := e.faults.StallFor(site); d > 0 {
		e.stats.addTask("fault_stall", d)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
	return e.faults.Fail(site)
}
