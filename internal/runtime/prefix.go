package runtime

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/tensor"
)

// PrefixStore is the shared-prefix KV cache behind Session.Admit: per-layer
// raw-float32 K/V blocks keyed by token-prefix hash chains, so a new request
// whose prompt extends a cached prefix seeds its slot from the stored blocks
// and only prefills the suffix.
//
// Data layout. A prompt is split into fixed-size blocks of BlockTokens
// tokens; block i stores, for every layer, the [BlockTokens, hidden] K and V
// rows the prefill computed for those positions. Blocks form chains: block i
// is keyed by hash(key(block i-1), tokens of block i), and each entry keeps
// both its parent pointer and its own token slice, so a lookup verifies the
// actual tokens along the chain — hash collisions can never alias two
// distinct prefixes (FuzzPrefixLookup pins this).
//
// Stored values are always the raw float32 prefill values. That is the mode
// the live prefill attention reads in every configuration (quantization
// happens only when a chunk is appended to a slot's store), so a seeded
// prefix is bit-identical for raw, quantized, and host-resident slots alike:
// the suffix prefill appends to the seeded rows and the slot's own store then
// chunks and (de)quantizes the full prompt exactly as a cold prefill would.
//
// Refcount lifecycle. Acquire pins every block of the matched chain for the
// lifetime of the admitted slot; Session.Retire releases the pins. Pinned
// blocks (and their ancestors, which necessarily have live children) are
// never evicted, so a seeding read mid-admit can never race a reclaim.
// Unreferenced leaf blocks are reclaimed LRU-first when an insert needs
// space, or in bulk by the pressure ladder's EvictUnreferenced rung.
//
// Bytes are charged to a dedicated Arena, so the cache budget shares the
// engine's saturating accounting and high-water tracking.
//
// All methods are safe for concurrent use.
type PrefixStore struct {
	mu      sync.Mutex
	block   int // tokens per block
	layers  int
	hidden  int
	arena   *Arena
	entries map[uint64][]*prefixEntry
	clock   int64 // logical LRU clock, bumped per touch

	hits, misses, inserts, evictions, reusedTokens int64
}

// prefixEntry is one cached block: the tokens it covers, its chain parent,
// and the per-layer K/V rows. refs counts live slot pins; children counts
// direct chain extensions (only refs==0 && children==0 entries are
// evictable, so eviction peels chains from the leaves inward).
type prefixEntry struct {
	hash     uint64
	parent   *prefixEntry
	tokens   []int
	keys     []*tensor.Tensor // per layer, [block, hidden]
	vals     []*tensor.Tensor
	refs     int
	children int
	lastUse  int64
	bytes    int64
}

// DefaultPrefixBlockTokens is the block granularity used when a caller
// leaves it unset: small enough that short shared prefixes still hit, large
// enough that chain walks stay cheap.
const DefaultPrefixBlockTokens = 16

// NewPrefixStore builds a prefix cache bounded to capacity bytes.
// blockTokens <= 0 takes DefaultPrefixBlockTokens.
func NewPrefixStore(capacity int64, blockTokens, layers, hidden int) (*PrefixStore, error) {
	if blockTokens <= 0 {
		blockTokens = DefaultPrefixBlockTokens
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("runtime: prefix store capacity %d must be positive", capacity)
	}
	if layers <= 0 || hidden <= 0 {
		return nil, fmt.Errorf("runtime: prefix store geometry %d layers x %d hidden must be positive", layers, hidden)
	}
	arena, err := NewArena("prefix-cache", capacity)
	if err != nil {
		return nil, err
	}
	return &PrefixStore{
		block:   blockTokens,
		layers:  layers,
		hidden:  hidden,
		arena:   arena,
		entries: make(map[uint64][]*prefixEntry),
	}, nil
}

// BlockTokens returns the store's block granularity.
func (ps *PrefixStore) BlockTokens() int { return ps.block }

// blockBytes is the charged size of one block: K+V rows across every layer.
func (ps *PrefixStore) blockBytes() int64 {
	return 2 * int64(ps.layers) * int64(ps.block) * int64(ps.hidden) * 4
}

// blockHash chains the parent's key with this block's tokens.
func blockHash(parent uint64, tokens []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], parent)
	h.Write(buf[:])
	for _, t := range tokens {
		binary.LittleEndian.PutUint64(buf[:], uint64(t))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// findLocked returns the entry for the given parent and exact token block,
// or nil. Token equality plus parent identity makes the match collision-proof.
func (ps *PrefixStore) findLocked(parent *prefixEntry, hash uint64, tokens []int) *prefixEntry {
	for _, e := range ps.entries[hash] {
		if e.parent != parent || len(e.tokens) != len(tokens) {
			continue
		}
		same := true
		for i, t := range e.tokens {
			if t != tokens[i] {
				same = false
				break
			}
		}
		if same {
			return e
		}
	}
	return nil
}

// walkLocked matches as many whole blocks of prompt as the store holds,
// capped at maxTokens, returning the chain in order.
func (ps *PrefixStore) walkLocked(prompt []int, maxTokens int) []*prefixEntry {
	if maxTokens > len(prompt) {
		maxTokens = len(prompt)
	}
	var chain []*prefixEntry
	var parent *prefixEntry
	parentHash := uint64(0)
	for off := 0; off+ps.block <= maxTokens; off += ps.block {
		blk := prompt[off : off+ps.block]
		h := blockHash(parentHash, blk)
		e := ps.findLocked(parent, h, blk)
		if e == nil {
			break
		}
		chain = append(chain, e)
		parent, parentHash = e, h
	}
	return chain
}

// PrefixMatch is a pinned chain of cached blocks covering a prompt's prefix.
// The pins hold until Release; SeedLayer reads stay valid for exactly that
// window.
type PrefixMatch struct {
	ps       *PrefixStore
	chain    []*prefixEntry
	tokens   int
	released bool
	mu       sync.Mutex
}

// Acquire pins the longest cached prefix of prompt, at block granularity and
// at most maxTokens tokens (callers pass len(prompt)-1 so at least one
// suffix token remains to prefill). It returns nil — and counts a miss —
// when no block matches.
func (ps *PrefixStore) Acquire(prompt []int, maxTokens int) *PrefixMatch {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	chain := ps.walkLocked(prompt, maxTokens)
	if len(chain) == 0 {
		ps.misses++
		return nil
	}
	ps.clock++
	for _, e := range chain {
		e.refs++
		e.lastUse = ps.clock
	}
	tokens := len(chain) * ps.block
	ps.hits++
	ps.reusedTokens += int64(tokens)
	return &PrefixMatch{ps: ps, chain: chain, tokens: tokens}
}

// MatchTokens reports how many tokens Acquire would reuse, without pinning —
// the scheduler's suffix-cost estimate for a still-queued request.
func (ps *PrefixStore) MatchTokens(prompt []int, maxTokens int) int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return len(ps.walkLocked(prompt, maxTokens)) * ps.block
}

// Tokens returns the pinned prefix length in tokens.
func (m *PrefixMatch) Tokens() int { return m.tokens }

// SeedLayer returns freshly allocated [tokens, hidden] K and V matrices for
// one layer, concatenated across the pinned chain. The copies are the
// caller's to own (a live cache installs and later drops them); the
// underlying blocks stay immutable in the store.
func (m *PrefixMatch) SeedLayer(layer int) (k, v *tensor.Tensor) {
	ps := m.ps
	k = tensor.New(m.tokens, ps.hidden)
	v = tensor.New(m.tokens, ps.hidden)
	for bi, e := range m.chain {
		for r := 0; r < ps.block; r++ {
			copy(k.Row(bi*ps.block+r), e.keys[layer].Row(r))
			copy(v.Row(bi*ps.block+r), e.vals[layer].Row(r))
		}
	}
	return k, v
}

// Release drops the chain's pins. Idempotent; Session.Retire calls it once
// per admitted slot, after which the refcounts are back to zero and the
// blocks become evictable.
func (m *PrefixMatch) Release() {
	if m == nil {
		return
	}
	m.mu.Lock()
	released := m.released
	m.released = true
	m.mu.Unlock()
	if released {
		return
	}
	m.ps.mu.Lock()
	for _, e := range m.chain {
		if e.refs > 0 {
			e.refs--
		}
	}
	m.ps.mu.Unlock()
}

// PrefixCandidate collects, during one prefill attempt, the KV rows of the
// prompt's full blocks that the store does not hold yet. It is committed
// only after the whole admit succeeds, so a fault-aborted attempt can never
// seed the cache with rolled-back values.
type PrefixCandidate struct {
	ps                 *PrefixStore
	prompt             []int
	fromBlock, toBlock int
	keys, vals         [][]*tensor.Tensor // [layer][block-fromBlock]
}

// NewCandidate prepares an insert for prompt given that matched tokens came
// from the store. It returns nil when every full block is already cached.
// Unlike Acquire, the candidate may cover blocks up to the full prompt
// length: the prefix KV of the final token is as valid as any other.
func (ps *PrefixStore) NewCandidate(prompt []int, matched int) *PrefixCandidate {
	from := matched / ps.block
	to := len(prompt) / ps.block
	if to <= from {
		return nil
	}
	c := &PrefixCandidate{
		ps:        ps,
		prompt:    append([]int(nil), prompt...),
		fromBlock: from,
		toBlock:   to,
		keys:      make([][]*tensor.Tensor, ps.layers),
		vals:      make([][]*tensor.Tensor, ps.layers),
	}
	return c
}

// CaptureLayer copies the candidate blocks' rows out of one layer's full
// [promptLen, hidden] K/V matrices (the live prefill cache, before the layer
// is offloaded and dropped).
func (c *PrefixCandidate) CaptureLayer(layer int, k, v *tensor.Tensor) {
	ps := c.ps
	n := c.toBlock - c.fromBlock
	ck := make([]*tensor.Tensor, n)
	cv := make([]*tensor.Tensor, n)
	for b := 0; b < n; b++ {
		bk := tensor.New(ps.block, ps.hidden)
		bv := tensor.New(ps.block, ps.hidden)
		base := (c.fromBlock + b) * ps.block
		for r := 0; r < ps.block; r++ {
			copy(bk.Row(r), k.Row(base+r))
			copy(bv.Row(r), v.Row(base+r))
		}
		ck[b], cv[b] = bk, bv
	}
	c.keys[layer], c.vals[layer] = ck, cv
}

// Commit inserts the candidate's blocks, evicting unreferenced LRU blocks as
// needed to fit the budget. Blocks whose chain parent has meanwhile been
// evicted cannot attach and are skipped (the chain re-forms on a later cold
// prefill); blocks another admit inserted first are skipped silently. It
// returns how many blocks were inserted and how many evicted to make room.
func (ps *PrefixStore) Commit(c *PrefixCandidate) (inserted, evicted int) {
	if c == nil {
		return 0, 0
	}
	for _, lk := range c.keys {
		if lk == nil {
			// A layer was never captured (the attempt aborted mid-prefill and
			// the caller committed anyway); refuse the partial insert.
			return 0, 0
		}
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	// Re-walk the chain up to fromBlock: the parents must still exist.
	var parent *prefixEntry
	parentHash := uint64(0)
	for b := 0; b < c.fromBlock; b++ {
		blk := c.prompt[b*ps.block : (b+1)*ps.block]
		h := blockHash(parentHash, blk)
		e := ps.findLocked(parent, h, blk)
		if e == nil {
			return inserted, evicted
		}
		parent, parentHash = e, h
	}
	ps.clock++
	for b := c.fromBlock; b < c.toBlock; b++ {
		blk := c.prompt[b*ps.block : (b+1)*ps.block]
		h := blockHash(parentHash, blk)
		if e := ps.findLocked(parent, h, blk); e != nil {
			// Raced with another insert of the same prefix; theirs wins.
			e.lastUse = ps.clock
			parent, parentHash = e, h
			continue
		}
		need := ps.blockBytes()
		ev, ok := ps.makeRoomLocked(need)
		evicted += ev
		if !ok {
			return inserted, evicted
		}
		if err := ps.arena.Alloc(need); err != nil {
			return inserted, evicted
		}
		e := &prefixEntry{
			hash:    h,
			parent:  parent,
			tokens:  append([]int(nil), blk...),
			keys:    make([]*tensor.Tensor, ps.layers),
			vals:    make([]*tensor.Tensor, ps.layers),
			lastUse: ps.clock,
			bytes:   need,
		}
		for l := 0; l < ps.layers; l++ {
			e.keys[l] = c.keys[l][b-c.fromBlock]
			e.vals[l] = c.vals[l][b-c.fromBlock]
		}
		ps.entries[h] = append(ps.entries[h], e)
		if parent != nil {
			parent.children++
		}
		ps.inserts++
		inserted++
		parent, parentHash = e, h
	}
	return inserted, evicted
}

// makeRoomLocked evicts unreferenced LRU leaves until need bytes fit,
// reporting how many blocks went and whether the space is now available.
func (ps *PrefixStore) makeRoomLocked(need int64) (evicted int, ok bool) {
	for ps.arena.Used()+need > ps.arena.Capacity() {
		if !ps.evictOneLocked() {
			return evicted, false
		}
		evicted++
	}
	return evicted, true
}

// evictOneLocked removes the least-recently-used unpinned leaf block.
func (ps *PrefixStore) evictOneLocked() bool {
	var victim *prefixEntry
	for _, chain := range ps.entries {
		for _, e := range chain {
			if e.refs > 0 || e.children > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victim = e
			}
		}
	}
	if victim == nil {
		return false
	}
	ps.removeLocked(victim)
	return true
}

// removeLocked unlinks one entry and returns its bytes to the arena.
func (ps *PrefixStore) removeLocked(e *prefixEntry) {
	chain := ps.entries[e.hash]
	for i, o := range chain {
		if o == e {
			ps.entries[e.hash] = append(chain[:i:i], chain[i+1:]...)
			break
		}
	}
	if len(ps.entries[e.hash]) == 0 {
		delete(ps.entries, e.hash)
	}
	if e.parent != nil && e.parent.children > 0 {
		e.parent.children--
	}
	ps.arena.Free(e.bytes)
	ps.evictions++
}

// EvictUnreferenced reclaims every block no live slot pins — the pressure
// ladder's cheapest rung: dropping cached prefixes costs future hit rate,
// never a live slot's storage mode. Chains are peeled leaf-first, so interior
// blocks whose children all went become reclaimable in the same sweep. It
// returns the number of blocks evicted.
func (ps *PrefixStore) EvictUnreferenced() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for ps.evictOneLocked() {
		n++
	}
	return n
}

// UsedBytes returns the charged cache bytes.
func (ps *PrefixStore) UsedBytes() int64 { return ps.arena.Used() }

// CapacityBytes returns the configured budget.
func (ps *PrefixStore) CapacityBytes() int64 { return ps.arena.Capacity() }

// Blocks returns the number of cached blocks.
func (ps *PrefixStore) Blocks() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, chain := range ps.entries {
		n += len(chain)
	}
	return n
}

// PrefixStats is a point-in-time snapshot of the store's counters.
type PrefixStats struct {
	Hits, Misses       int64
	Inserts, Evictions int64
	ReusedTokens       int64
	UsedBytes          int64
	CapacityBytes      int64
	Blocks             int
}

// Stats snapshots the store.
func (ps *PrefixStore) Stats() PrefixStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, chain := range ps.entries {
		n += len(chain)
	}
	return PrefixStats{
		Hits: ps.hits, Misses: ps.misses,
		Inserts: ps.inserts, Evictions: ps.evictions,
		ReusedTokens:  ps.reusedTokens,
		UsedBytes:     ps.arena.Used(),
		CapacityBytes: ps.arena.Capacity(),
		Blocks:        n,
	}
}

// refsTotal sums live pins across every block (test hook: must be zero once
// every admitted slot retired).
func (ps *PrefixStore) refsTotal() int {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := 0
	for _, chain := range ps.entries {
		for _, e := range chain {
			n += e.refs
		}
	}
	return n
}
