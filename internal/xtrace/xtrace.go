// Package xtrace records execution spans from the functional engine, the
// discrete-event simulator, and the serving scheduler using one shared task
// vocabulary: the six overlapped decode tasks of Eq. 2 (compute, load_weight,
// load_cache, store_cache, load_activation, store_activation) plus the
// quantization phases of Eqs. 12–16 and 20–23 (quant_kv, dequant_kv,
// dequant_weight) and the serving lifecycle (queue_wait, admit, step,
// retire). Spans aggregate into per-task totals (agg.go) and export as
// Chrome trace-event JSON (chrome.go) loadable in chrome://tracing or
// Perfetto.
//
// The recorder is designed so instrumentation can stay compiled into hot
// paths: every method is safe on a nil *Recorder and returns immediately, so
// a disabled tracer costs one pointer check per would-be span. Recording is
// a short critical section appending into a fixed-capacity ring; when the
// ring wraps the oldest spans are overwritten and counted in Dropped.
package xtrace

import (
	"sync"
	"time"
)

// Task names shared by the engine, the simulator, and the scheduler. The
// first six are the Eq. 2 task set; the engine's stats accounting uses the
// same strings, so Stats.TaskTime and trace aggregates line up key-for-key.
const (
	TaskCompute  = "compute"
	TaskLoadWgt  = "load_weight"
	TaskLoadKV   = "load_cache"
	TaskStoreKV  = "store_cache"
	TaskLoadAct  = "load_activation"
	TaskStoreAct = "store_activation"

	// Quantization phases (Eqs. 12–16 and 20–23). Each nests inside its
	// parent transfer span on the same lane: dequant_weight within
	// load_weight, dequant_kv within load_cache, quant_kv within
	// store_cache.
	TaskDequantWgt = "dequant_weight"
	TaskDequantKV  = "dequant_kv"
	TaskQuantKV    = "quant_kv"

	// Engine lifecycle. A prefill_chunk span covers one bounded increment of
	// a chunked prefill (Session.PrefillChunk); its Step label carries the
	// number of prompt tokens consumed by that chunk so conformance checks
	// can assert no chunk exceeded the configured budget.
	TaskPrefill      = "prefill"
	TaskPrefillChunk = "prefill_chunk"
	TaskDecodeStep   = "decode_step"
	TaskKVSpill      = "kv_spill"

	// Serving lifecycle.
	TaskQueueWait = "queue_wait"
	TaskAdmit     = "admit"
	TaskStep      = "step"
	TaskRetire    = "retire"

	// Shared-prefix KV cache: a hit span covers the lookup+pin of the
	// longest cached prefix at admission; insert/evict are instantaneous
	// markers for blocks entering and leaving the store.
	TaskPrefixHit    = "prefix_hit"
	TaskPrefixInsert = "prefix_insert"
	TaskPrefixEvict  = "prefix_evict"

	// Cluster routing lifecycle: a route span covers scoring and the primary
	// dispatch decision; hedge marks a secondary attempt launched against a
	// slow or degraded primary; failover marks a mid-flight re-dispatch away
	// from a downed replica; replica_down/replica_up mark health transitions.
	TaskRoute       = "route"
	TaskHedge       = "hedge"
	TaskFailover    = "failover"
	TaskReplicaDown = "replica_down"
	TaskReplicaUp   = "replica_up"

	// Online-adaptation lifecycle (internal/adapt): drift_detect/drift_clear
	// mark the detector raising and lowering its drift verdict; refit covers
	// one background profile-refit + policy re-search; policy_swap,
	// policy_commit, and policy_rollback mark a candidate applied at a step
	// boundary, surviving its canary, and being reverted after a measured
	// regression.
	TaskDriftDetect    = "drift_detect"
	TaskDriftClear     = "drift_clear"
	TaskRefit          = "refit"
	TaskPolicySwap     = "policy_swap"
	TaskPolicyCommit   = "policy_commit"
	TaskPolicyRollback = "policy_rollback"
)

// Lanes name the logical resource a span occupied. The Chrome exporter maps
// each lane to its own tid so spans that genuinely overlap (different
// resources) never render as false nesting, while spans on one lane nest by
// containment (e.g. dequant_weight inside load_weight).
const (
	LaneEngine  = "engine"
	LaneGPU     = "gpu"
	LaneCPU     = "cpu"
	LaneWeights = "h2d.weight"
	LaneKVUp    = "h2d.kv"
	LaneKVDown  = "d2h.kv"
	LaneActUp   = "h2d.act"
	LaneActDown = "d2h.act"
	LaneServe   = "serve"
	LaneCluster = "cluster"
	LaneAdapt   = "adapt"
)

// Labels attach step/layer/slot coordinates to a span; -1 means "not
// applicable" (e.g. a prefill span has no decode step index).
type Labels struct {
	Step  int
	Layer int
	Slot  int
}

// NoLabels is the unlabeled value for spans outside the step/layer/slot grid.
var NoLabels = Labels{Step: -1, Layer: -1, Slot: -1}

// At builds Labels; pass -1 for coordinates that do not apply.
func At(step, layer, slot int) Labels { return Labels{Step: step, Layer: layer, Slot: slot} }

// Span is one completed interval of work. Start is an offset from the
// recorder's epoch (monotonic for live recording, the sim clock for
// simulated schedules), so spans from one recorder are mutually comparable.
type Span struct {
	Name  string
	Lane  string
	Start time.Duration
	Dur   time.Duration
	Labels
}

// End returns the span's end offset.
func (s Span) End() time.Duration { return s.Start + s.Dur }

// DefaultCapacity bounds the ring when NewRecorder is given cap <= 0. At
// ~80 B/span this is ~5 MiB — several thousand decode steps of a fully
// instrumented tiny-model run before wraparound.
const DefaultCapacity = 1 << 16

// Recorder collects spans into a fixed-capacity ring. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops), so call sites
// never branch on "tracing enabled".
type Recorder struct {
	epoch time.Time

	mu      sync.Mutex
	ring    []Span
	next    uint64 // total spans ever recorded; ring index is next % cap
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity spans (DefaultCapacity
// when capacity <= 0). The epoch is the wall-clock instant of creation; spans
// recorded via Record are offset against it using the monotonic clock.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{epoch: time.Now(), ring: make([]Span, 0, capacity)}
}

// Epoch returns the recorder's time origin.
func (r *Recorder) Epoch() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.epoch
}

// Record adds a span for work that started at the wall-clock instant start
// and ran for dur. Nil-safe; negative durations are clamped to zero so a
// stepped system clock cannot corrupt the trace.
func (r *Recorder) Record(name, lane string, start time.Time, dur time.Duration, l Labels) {
	if r == nil {
		return
	}
	r.RecordAt(name, lane, start.Sub(r.epoch), dur, l)
}

// RecordAt adds a span at an explicit offset from the epoch. The simulator
// uses this to replay its virtual-time schedule into the same format.
func (r *Recorder) RecordAt(name, lane string, start, dur time.Duration, l Labels) {
	if r == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	s := Span{Name: name, Lane: lane, Start: start, Dur: dur, Labels: l}
	r.mu.Lock()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next%uint64(cap(r.ring))] = s
		r.dropped++
	}
	r.next++
	r.mu.Unlock()
}

// Event records an instantaneous marker (zero-duration span).
func (r *Recorder) Event(name, lane string, start time.Time, l Labels) {
	r.Record(name, lane, start, 0, l)
}

// Spans returns a copy of the retained spans sorted in recording order
// (oldest retained first). The copy is safe to read while recording
// continues.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.ring) < cap(r.ring) {
		out := make([]Span, len(r.ring))
		copy(out, r.ring)
		return out
	}
	// Wrapped: oldest retained span sits at next % cap.
	c := uint64(cap(r.ring))
	out := make([]Span, 0, c)
	head := r.next % c
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out
}

// Len reports how many spans are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Dropped reports how many spans were overwritten by ring wraparound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset drops all retained spans and the dropped counter, keeping the epoch.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.ring = r.ring[:0]
	r.next = 0
	r.dropped = 0
	r.mu.Unlock()
}
