package xtrace

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"testing"
	"time"
)

// FuzzTraceExport feeds arbitrary span sets — garbage names/lanes, negative
// and overflowing offsets, zero-duration and out-of-order spans — through
// the Chrome exporter and asserts the output is always valid JSON with one
// "X" event per span. The exporter is the last hop before an external
// viewer, so it must be total: sanitize, never fail.
func FuzzTraceExport(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x80, 0x01})
	f.Add([]byte("load_weight\x00gpu\xfe\xff\xff\xff\xff\xff\xff\x7f"))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		spans := spansFromBytes(data)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, spans); err != nil {
			t.Fatalf("WriteChromeTrace failed on %d fuzzed spans: %v", len(spans), err)
		}
		var out struct {
			TraceEvents []struct {
				Ph  string  `json:"ph"`
				Ts  float64 `json:"ts"`
				Dur float64 `json:"dur"`
			} `json:"traceEvents"`
			DisplayTimeUnit string `json:"displayTimeUnit"`
		}
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("exporter emitted invalid JSON: %v\n%s", err, buf.Bytes())
		}
		nX := 0
		for _, e := range out.TraceEvents {
			switch e.Ph {
			case "X":
				nX++
				if math.IsNaN(e.Ts) || math.IsInf(e.Ts, 0) || e.Ts < 0 ||
					math.IsNaN(e.Dur) || math.IsInf(e.Dur, 0) || e.Dur < 0 {
					t.Fatalf("unsanitized timestamp ts=%v dur=%v", e.Ts, e.Dur)
				}
			case "M": // lane metadata
			default:
				t.Fatalf("unexpected event phase %q", e.Ph)
			}
		}
		if nX != len(spans) {
			t.Fatalf("exported %d X events for %d spans", nX, len(spans))
		}
	})
}

// spansFromBytes deterministically decodes a fuzz payload into spans,
// deliberately without any validation: names may contain NULs and invalid
// UTF-8, offsets and durations may be negative or near-overflow, labels may
// be any int value.
func spansFromBytes(data []byte) []Span {
	var spans []Span
	for len(data) >= 4 {
		nameLen := int(data[0]) % 9
		laneLen := int(data[1]) % 5
		data = data[2:]
		take := func(n int) string {
			if n > len(data) {
				n = len(data)
			}
			s := string(data[:n])
			data = data[n:]
			return s
		}
		s := Span{Name: take(nameLen), Lane: take(laneLen)}
		if len(data) >= 8 {
			s.Start = time.Duration(binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
		if len(data) >= 8 {
			s.Dur = time.Duration(binary.LittleEndian.Uint64(data))
			data = data[8:]
		}
		if len(data) >= 3 {
			s.Step = int(int8(data[0]))
			s.Layer = int(int8(data[1]))
			s.Slot = int(int8(data[2]))
			data = data[3:]
		}
		spans = append(spans, s)
		if len(spans) >= 256 {
			break
		}
	}
	return spans
}
