package xtrace

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events plus "M" metadata). Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container form of the format, which both
// chrome://tracing and Perfetto accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports spans as Chrome trace-event JSON. Each distinct
// lane becomes its own tid (with a thread_name metadata record) so
// concurrent resources render as parallel tracks. The exporter is total: it
// sanitizes non-finite or negative inputs rather than failing, so any span
// sequence — including fuzzed garbage — yields valid JSON.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	// Stable lane → tid assignment: lanes in first-seen order after sorting
	// spans by start so repeated exports of one trace agree.
	sorted := make([]Span, len(spans))
	copy(sorted, spans)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	tids := make(map[string]int)
	var laneOrder []string
	for _, s := range sorted {
		if _, ok := tids[s.Lane]; !ok {
			tids[s.Lane] = len(tids) + 1
			laneOrder = append(laneOrder, s.Lane)
		}
	}

	events := make([]chromeEvent, 0, len(sorted)+len(laneOrder))
	for _, lane := range laneOrder {
		name := lane
		if name == "" {
			name = "(unnamed)"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[lane],
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range sorted {
		args := map[string]any{}
		if s.Step >= 0 {
			args["step"] = s.Step
		}
		if s.Layer >= 0 {
			args["layer"] = s.Layer
		}
		if s.Slot >= 0 {
			args["slot"] = s.Slot
		}
		if len(args) == 0 {
			args = nil
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Lane,
			Ph:   "X",
			Ts:   sanitizeMicros(s.Start.Seconds() * 1e6),
			Dur:  sanitizeMicros(s.Dur.Seconds() * 1e6),
			Pid:  1,
			Tid:  tids[s.Lane],
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// sanitizeMicros clamps values json.Marshal would reject or viewers would
// choke on: NaN/±Inf become 0, negatives become 0.
func sanitizeMicros(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// WriteFile exports the recorder's retained spans to path as Chrome
// trace-event JSON. Nil-safe: a nil recorder writes an empty (but valid)
// trace so `-trace` works even when nothing was recorded.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteChromeTrace(f, r.Spans())
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
