package xtrace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderSafe proves the compiled-in instrumentation contract: every
// method on a nil *Recorder is a no-op, never a panic.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record("x", LaneGPU, time.Now(), time.Millisecond, NoLabels)
	r.RecordAt("x", LaneGPU, 0, time.Millisecond, At(1, 2, 3))
	r.Event("x", LaneGPU, time.Now(), NoLabels)
	r.Reset()
	if got := r.Spans(); got != nil {
		t.Errorf("nil recorder Spans() = %v, want nil", got)
	}
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("nil recorder Len/Dropped = %d/%d, want 0/0", r.Len(), r.Dropped())
	}
	if !r.Epoch().IsZero() {
		t.Errorf("nil recorder Epoch() = %v, want zero", r.Epoch())
	}
}

// TestRingWraparound fills a small ring past capacity and checks that the
// oldest spans are dropped, the drop counter is exact, and Spans returns
// the retained window oldest-first.
func TestRingWraparound(t *testing.T) {
	const capacity, total = 8, 21
	r := NewRecorder(capacity)
	for i := 0; i < total; i++ {
		r.RecordAt(fmt.Sprintf("s%d", i), LaneEngine, time.Duration(i), 1, At(i, -1, -1))
	}
	if r.Len() != capacity {
		t.Fatalf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != total-capacity {
		t.Fatalf("Dropped = %d, want %d", r.Dropped(), total-capacity)
	}
	spans := r.Spans()
	for i, s := range spans {
		want := fmt.Sprintf("s%d", total-capacity+i)
		if s.Name != want {
			t.Errorf("spans[%d] = %s, want %s (oldest retained first)", i, s.Name, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Errorf("after Reset: Len/Dropped = %d/%d, want 0/0", r.Len(), r.Dropped())
	}
}

// TestNegativeDurationClamped: a stepped system clock must not write
// negative durations into the trace.
func TestNegativeDurationClamped(t *testing.T) {
	r := NewRecorder(4)
	r.RecordAt("x", LaneGPU, 10, -5, NoLabels)
	if got := r.Spans()[0].Dur; got != 0 {
		t.Errorf("Dur = %v, want 0 (clamped)", got)
	}
}

// TestAggregate checks per-task stats, lane busy-union, wall, and coverage
// on a hand-built overlap pattern.
func TestAggregate(t *testing.T) {
	spans := []Span{
		{Name: TaskCompute, Lane: LaneGPU, Start: 0, Dur: 10},
		{Name: TaskCompute, Lane: LaneGPU, Start: 20, Dur: 6},
		{Name: TaskLoadWgt, Lane: LaneWeights, Start: 5, Dur: 10}, // overlaps compute[0..10]
		{Name: TaskDequantWgt, Lane: LaneWeights, Start: 6, Dur: 2},
	}
	sum := Aggregate(spans)
	if st := sum.Tasks[TaskCompute]; st.Count != 2 || st.Total != 16 || st.Min != 6 || st.Max != 10 {
		t.Errorf("compute stat = %+v, want count 2 total 16 min 6 max 10", st)
	}
	// dequant nests inside load_weight on the same lane: the lane union must
	// not double-count it.
	if got := sum.LaneBusy[LaneWeights]; got != 10 {
		t.Errorf("weights lane busy = %v, want 10 (nested span not double-counted)", got)
	}
	if sum.Wall != 26 {
		t.Errorf("Wall = %v, want 26", sum.Wall)
	}
	// Union of [0,10] ∪ [5,15] ∪ [20,26] = 15 + 6.
	if sum.Covered != 21 {
		t.Errorf("Covered = %v, want 21", sum.Covered)
	}
	if got := sum.Total(TaskLoadWgt); got != 10 {
		t.Errorf("Total(load_weight) = %v, want 10", got)
	}
	if got := sum.Total("absent"); got != 0 {
		t.Errorf("Total(absent) = %v, want 0", got)
	}
}

// TestArgmaxTask checks the empirical Eq. 2 argmax, including the
// earlier-name tie-break and zero-for-absent semantics.
func TestArgmaxTask(t *testing.T) {
	sum := Aggregate([]Span{
		{Name: TaskLoadWgt, Lane: LaneWeights, Start: 0, Dur: 7},
		{Name: TaskCompute, Lane: LaneGPU, Start: 0, Dur: 7},
		{Name: TaskLoadKV, Lane: LaneKVUp, Start: 0, Dur: 3},
	})
	if got := sum.ArgmaxTask(TaskCompute, TaskLoadWgt, TaskLoadKV); got != TaskCompute {
		t.Errorf("ArgmaxTask tie = %s, want %s (earlier name wins)", got, TaskCompute)
	}
	if got := sum.ArgmaxTask(TaskStoreKV, TaskLoadKV); got != TaskLoadKV {
		t.Errorf("ArgmaxTask = %s, want %s", got, TaskLoadKV)
	}
	if got := sum.ArgmaxTask(TaskStoreKV, TaskStoreAct); got != TaskStoreKV {
		t.Errorf("ArgmaxTask all-absent = %s, want first name", got)
	}
}

// TestStepTotals groups per-task time by decode step and ignores unlabeled
// spans.
func TestStepTotals(t *testing.T) {
	spans := []Span{
		{Name: TaskCompute, Lane: LaneGPU, Start: 0, Dur: 4, Labels: At(0, 0, -1)},
		{Name: TaskCompute, Lane: LaneGPU, Start: 4, Dur: 5, Labels: At(0, 1, -1)},
		{Name: TaskCompute, Lane: LaneGPU, Start: 9, Dur: 6, Labels: At(1, 0, -1)},
		{Name: TaskPrefill, Lane: LaneEngine, Start: 0, Dur: 2, Labels: NoLabels},
	}
	st := StepTotals(spans)
	if len(st) != 2 {
		t.Fatalf("got %d steps, want 2", len(st))
	}
	if st[0][TaskCompute] != 9 || st[1][TaskCompute] != 6 {
		t.Errorf("step totals = %v, want step0 compute 9, step1 compute 6", st)
	}
}

// TestAttribution checks that shared time splits equally and the totals sum
// to the union coverage of the named tasks.
func TestAttribution(t *testing.T) {
	spans := []Span{
		{Name: TaskCompute, Lane: LaneGPU, Start: 0, Dur: 10},
		{Name: TaskLoadWgt, Lane: LaneWeights, Start: 5, Dur: 10},
		{Name: "ignored", Lane: LaneCPU, Start: 0, Dur: 100},
	}
	attr := Attribution(spans, TaskCompute, TaskLoadWgt)
	// [0,5) compute alone, [5,10) shared 50/50, [10,15) load alone.
	if attr[TaskCompute] != 7 || attr[TaskLoadWgt] != 7 {
		t.Errorf("attribution = %v, want compute 7.5ns-ish... got compute %v load %v",
			attr, attr[TaskCompute], attr[TaskLoadWgt])
	}
	var total time.Duration
	for _, v := range attr {
		total += v
	}
	covered := coveredTime([]Span{spans[0], spans[1]})
	// Integer division of the shared interval may lose at most one tick per
	// boundary.
	if diff := covered - total; diff < 0 || diff > 2 {
		t.Errorf("attribution sum %v vs coverage %v (diff %v), want equal within rounding", total, covered, diff)
	}
	if _, ok := attr["ignored"]; ok {
		t.Error("unnamed task leaked into attribution")
	}
}

// TestDurations returns per-span samples in recording order.
func TestDurations(t *testing.T) {
	spans := []Span{
		{Name: TaskDecodeStep, Dur: 3},
		{Name: TaskCompute, Dur: 9},
		{Name: TaskDecodeStep, Dur: 5},
	}
	got := Durations(spans, TaskDecodeStep)
	if len(got) != 2 || got[0] != 3 || got[1] != 5 {
		t.Errorf("Durations = %v, want [3 5]", got)
	}
}

// TestConcurrentRecord hammers one recorder from many goroutines (run under
// -race): the ring must retain exactly capacity spans and account for every
// drop, and concurrent Spans/Len/Dropped readers must not race the writers.
func TestConcurrentRecord(t *testing.T) {
	const (
		capacity   = 64
		writers    = 8
		perWriter  = 500
		totalSpans = writers * perWriter
	)
	r := NewRecorder(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Spans()
				_ = r.Len()
				_ = r.Dropped()
			}
		}
	}()
	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				r.RecordAt(TaskCompute, LaneGPU, time.Duration(i), 1, At(i, w, -1))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()
	if r.Len() != capacity {
		t.Errorf("Len = %d, want %d", r.Len(), capacity)
	}
	if r.Dropped() != totalSpans-capacity {
		t.Errorf("Dropped = %d, want %d", r.Dropped(), totalSpans-capacity)
	}
}
