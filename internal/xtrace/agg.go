package xtrace

import (
	"sort"
	"time"
)

// TaskStat accumulates the spans of one task name.
type TaskStat struct {
	Count int
	Total time.Duration
	Min   time.Duration
	Max   time.Duration
}

// Summary is the aggregate view of a span set: per-task totals, per-lane
// busy time (union of intervals, so nested sub-spans do not double-count a
// lane), and the wall-clock envelope.
type Summary struct {
	Tasks map[string]TaskStat
	// LaneBusy is the covered (union) time per lane.
	LaneBusy map[string]time.Duration
	// Wall is latest end minus earliest start across all spans.
	Wall time.Duration
	// Covered is the union of all span intervals regardless of lane: the
	// time at least one task was running.
	Covered time.Duration
}

// Aggregate summarizes spans. AggregateIf restricts to spans passing keep.
func Aggregate(spans []Span) *Summary { return AggregateIf(spans, nil) }

// AggregateIf summarizes the spans for which keep returns true (nil keep
// means all spans).
func AggregateIf(spans []Span, keep func(Span) bool) *Summary {
	sum := &Summary{Tasks: map[string]TaskStat{}, LaneBusy: map[string]time.Duration{}}
	var kept []Span
	first, last := time.Duration(1<<62), time.Duration(0)
	for _, s := range spans {
		if keep != nil && !keep(s) {
			continue
		}
		kept = append(kept, s)
		st := sum.Tasks[s.Name]
		if st.Count == 0 || s.Dur < st.Min {
			st.Min = s.Dur
		}
		if s.Dur > st.Max {
			st.Max = s.Dur
		}
		st.Count++
		st.Total += s.Dur
		sum.Tasks[s.Name] = st
		if s.Start < first {
			first = s.Start
		}
		if s.End() > last {
			last = s.End()
		}
	}
	if len(kept) == 0 {
		return sum
	}
	sum.Wall = last - first
	byLane := map[string][]Span{}
	for _, s := range kept {
		byLane[s.Lane] = append(byLane[s.Lane], s)
	}
	for lane, ls := range byLane {
		sum.LaneBusy[lane] = coveredTime(ls)
	}
	sum.Covered = coveredTime(kept)
	return sum
}

// Total returns the summed duration of one task (0 if absent).
func (s *Summary) Total(name string) time.Duration { return s.Tasks[name].Total }

// ArgmaxTask returns the task with the largest total among names — the
// empirical counterpart of the Eq. 2 argmax. Ties break toward the earlier
// name in the list; names with no spans count as zero.
func (s *Summary) ArgmaxTask(names ...string) string {
	best, bestT := "", time.Duration(-1)
	for _, n := range names {
		if t := s.Tasks[n].Total; t > bestT {
			best, bestT = n, t
		}
	}
	return best
}

// coveredTime computes the union length of the spans' intervals.
func coveredTime(spans []Span) time.Duration {
	if len(spans) == 0 {
		return 0
	}
	iv := make([]Span, len(spans))
	copy(iv, spans)
	sort.Slice(iv, func(i, j int) bool { return iv[i].Start < iv[j].Start })
	var total time.Duration
	curStart, curEnd := iv[0].Start, iv[0].End()
	for _, s := range iv[1:] {
		if s.Start > curEnd {
			total += curEnd - curStart
			curStart, curEnd = s.Start, s.End()
			continue
		}
		if s.End() > curEnd {
			curEnd = s.End()
		}
	}
	return total + (curEnd - curStart)
}

// StepTotals groups per-task time by decode step for spans carrying a step
// label: result[step][task] = total duration. It is the data behind
// per-step histograms.
func StepTotals(spans []Span) map[int]map[string]time.Duration {
	out := map[int]map[string]time.Duration{}
	for _, s := range spans {
		if s.Step < 0 {
			continue
		}
		m := out[s.Step]
		if m == nil {
			m = map[string]time.Duration{}
			out[s.Step] = m
		}
		m[s.Name] += s.Dur
	}
	return out
}

// Durations returns every retained duration of one task name in recording
// order — the raw samples for a per-step histogram of e.g. decode_step.
func Durations(spans []Span, name string) []time.Duration {
	var out []time.Duration
	for _, s := range spans {
		if s.Name == name {
			out = append(out, s.Dur)
		}
	}
	return out
}

// Attribution splits covered wall-clock time among task names: every instant
// where at least one of the named tasks is active is divided equally among
// the tasks active at that instant. The totals therefore sum to the union
// coverage of the named tasks, and the largest share identifies the
// critical-path task — the one Eq. 2's max says should bound the step. Spans
// whose names are not listed are ignored.
func Attribution(spans []Span, names ...string) map[string]time.Duration {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	type edge struct {
		at    time.Duration
		name  string
		delta int
	}
	var edges []edge
	for _, s := range spans {
		if !want[s.Name] || s.Dur <= 0 {
			continue
		}
		edges = append(edges, edge{s.Start, s.Name, +1}, edge{s.End(), s.Name, -1})
	}
	out := map[string]time.Duration{}
	if len(edges) == 0 {
		return out
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta > edges[j].delta // opens before closes at ties
	})
	active := map[string]int{}
	prev := edges[0].at
	for _, e := range edges {
		if e.at > prev {
			n := 0
			for _, c := range active {
				if c > 0 {
					n++
				}
			}
			if n > 0 {
				share := (e.at - prev) / time.Duration(n)
				for name, c := range active {
					if c > 0 {
						out[name] += share
					}
				}
			}
			prev = e.at
		}
		active[e.name] += e.delta
	}
	return out
}
