package xtrace_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/threadpool"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

var update = flag.Bool("update", false, "rewrite golden trace-structure files")

// traceStructure reduces a span set to its timing-free shape: span counts
// per lane|name, plus the set of same-lane (parent>child) containment pairs
// (e.g. dequant_weight nested inside load_weight). Times vary run to run;
// the structure — which spans exist, how many, and what nests where — must
// not, so it is what the golden files pin.
func traceStructure(spans []xtrace.Span) string {
	counts := map[string]int{}
	for _, s := range spans {
		counts[s.Lane+"|"+s.Name]++
	}
	nests := map[string]bool{}
	byLane := map[string][]xtrace.Span{}
	for _, s := range spans {
		byLane[s.Lane] = append(byLane[s.Lane], s)
	}
	for lane, ls := range byLane {
		for _, child := range ls {
			for _, parent := range ls {
				if parent.Name == child.Name || parent.Dur <= child.Dur {
					continue
				}
				if child.Start >= parent.Start && child.End() <= parent.End() {
					nests[fmt.Sprintf("nest %s|%s>%s", lane, parent.Name, child.Name)] = true
				}
			}
		}
	}
	var lines []string
	for k, n := range counts {
		lines = append(lines, fmt.Sprintf("count %s %d", k, n))
	}
	for k := range nests {
		lines = append(lines, k)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("trace structure diverged from %s (run with -update after intentional changes)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenEngineTrace pins the span structure of a deterministic
// single-threaded engine run with weight and KV quantization enabled: which
// tasks are emitted on which lanes, how many of each (per layer per step),
// and the quant-phase nesting (dequant_weight inside load_weight,
// dequant_kv inside load_cache, quant_kv inside store_cache).
func TestGoldenEngineTrace(t *testing.T) {
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	q4 := quant.Config{Bits: 4, GroupSize: 32}
	pol := runtime.Policy{IntraOp: 1, QuantWeights: true, WeightCfg: q4, QuantKV: true, KVCfg: q4}
	eng, err := runtime.NewEngine(m, pol, 1<<31, threadpool.MustNew(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec)
	w := trace.Workload{PromptLen: 4, GenLen: 3, GPUBatch: 2, NumBatches: 1}
	prompts := w.Prompts(rand.New(rand.NewSource(7)), cfg.Vocab)
	if _, err := eng.Generate(context.Background(), prompts, w.GenLen); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "engine_trace_golden.txt", traceStructure(rec.Spans()))
}

// TestGoldenChunkedSessionTrace pins the span structure of a deterministic
// single-threaded session interleaving decode steps with a chunked prefill:
// one prefill_chunk span per increment (three chunks for a 10-token prompt
// at 4 tokens/chunk), decode steps continuing throughout, and no monolithic
// prefill span for the chunked slot.
func TestGoldenChunkedSessionTrace(t *testing.T) {
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<31, threadpool.MustNew(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec)
	sess, err := eng.NewSession(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	mkPrompt := func(n int) []int {
		p := make([]int, n)
		for i := range p {
			p[i] = rng.Intn(cfg.Vocab)
		}
		return p
	}
	if _, err := sess.Admit(ctx, 0, mkPrompt(4)); err != nil {
		t.Fatal(err)
	}
	if err := sess.BeginPrefill(1, mkPrompt(10), false); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // 10 tokens at 4/chunk: exactly three chunks
		if _, err := sess.Step(ctx); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := sess.PrefillChunk(ctx, 1, 4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ { // both slots decode together
		if _, err := sess.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	checkGolden(t, "chunked_trace_golden.txt", traceStructure(rec.Spans()))
}

// TestGoldenSimTrace pins the span structure of a simulated decode schedule
// under a quantized offloading strategy: virtual time is exact, so counts
// are a strict function of (layers, steps, strategy) and any drift means
// the DES task construction changed.
func TestGoldenSimTrace(t *testing.T) {
	est, err := perfmodel.New(
		hw.SingleGPUA100(), model.Tiny(),
		trace.Workload{PromptLen: 8, GenLen: 4, GPUBatch: 4, NumBatches: 2},
		perfmodel.Strategy{WeightsGPUPct: 0.5, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 32},
		perfmodel.LMOffloadProfile(),
	)
	if err != nil {
		t.Fatal(err)
	}
	rec := xtrace.NewRecorder(0)
	if _, err := sim.SimulateDecodeTraced(est, 2, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("sim run recorded no spans")
	}
	checkGolden(t, "sim_trace_golden.txt", traceStructure(rec.Spans()))
}
