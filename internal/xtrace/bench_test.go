package xtrace_test

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/threadpool"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// BenchmarkRecordDisabled measures the cost of an instrumentation site when
// tracing is off: one nil check, no allocation. This is the contract that
// lets span recording stay compiled into the engine's hot loops.
func BenchmarkRecordDisabled(b *testing.B) {
	var r *xtrace.Recorder
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(xtrace.TaskCompute, xtrace.LaneGPU, start, time.Microsecond, xtrace.NoLabels)
	}
}

// BenchmarkRecordEnabled measures a live span append into the ring.
func BenchmarkRecordEnabled(b *testing.B) {
	r := xtrace.NewRecorder(1 << 10)
	start := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(xtrace.TaskCompute, xtrace.LaneGPU, start, time.Microsecond, xtrace.NoLabels)
	}
}

// benchEngine builds a tiny engine for the end-to-end tracing benchmarks.
func benchEngine(b *testing.B, rec *xtrace.Recorder) (*runtime.Engine, [][]int, int) {
	b.Helper()
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(7)), cfg)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{Prefetch: true, IntraOp: 2}, 1<<31, threadpool.MustNew(2))
	if err != nil {
		b.Fatal(err)
	}
	eng.SetTracer(rec)
	w := trace.Workload{PromptLen: 8, GenLen: 4, GPUBatch: 2, NumBatches: 1}
	return eng, w.Prompts(rand.New(rand.NewSource(7)), cfg.Vocab), w.GenLen
}

// BenchmarkEngineTracingOff / On bound the whole-run overhead of full
// instrumentation: the delta is the price of `-trace`, the Off case shows
// the disabled instrumentation is free at generation scale.
func BenchmarkEngineTracingOff(b *testing.B) {
	eng, prompts, gen := benchEngine(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Generate(context.Background(), prompts, gen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineTracingOn(b *testing.B) {
	rec := xtrace.NewRecorder(0)
	eng, prompts, gen := benchEngine(b, rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Reset()
		if _, err := eng.Generate(context.Background(), prompts, gen); err != nil {
			b.Fatal(err)
		}
	}
}
