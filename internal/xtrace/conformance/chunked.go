package conformance

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// chunkGrid is the chunk-size sweep the chunked arms run. It brackets the
// degenerate single-token case, sizes that do and do not divide the prompt,
// and the whole-prompt (monolithic) case.
func chunkGrid(promptLen int) []int {
	return []int{1, 5, 16, promptLen - 1, promptLen}
}

// ChunkedSimVsModel runs the chunked-prefill simulator over a strategy ×
// chunk-size grid and checks that each task kind's total busy time equals
// the estimator's chunked closed form (Estimator.ChunkedPrefillTasks) at
// hard float tolerance. Busy totals are schedule-independent — a task is
// busy for its service time wherever the DES places it — so this is an
// equality arm like SimVsModel, not a calibration band. The DES makespan is
// additionally held to its structural envelope: at least the busiest kind's
// total, at most the serial sum.
func ChunkedSimVsModel() (*Report, error) {
	rep := &Report{}
	mod := model.OPT30B
	work := trace.Workload{PromptLen: 64, GenLen: 32, GPUBatch: 64, NumBatches: 10}
	kinds := []struct {
		name string
		pick func(perfmodel.TaskTimes) float64
	}{
		{"load_weight", func(tt perfmodel.TaskTimes) float64 { return tt.LoadWeight }},
		{"prefill_compute", func(tt perfmodel.TaskTimes) float64 { return tt.Compute }},
		{"store_cache", func(tt perfmodel.TaskTimes) float64 { return tt.StoreCache }},
	}
	for _, c := range simGrid() {
		est, err := perfmodel.New(hw.SingleGPUA100(), mod, work, c.strat, c.exec)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", c.label, err)
		}
		for _, chunk := range chunkGrid(work.PromptLen) {
			res, err := sim.SimulateChunkedPrefill(est, chunk)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s chunk=%d: %w", c.label, chunk, err)
			}
			want := est.ChunkedPrefillTasks(chunk)
			label := fmt.Sprintf("%s/c%d", c.label, chunk)
			for _, k := range kinds {
				pred, meas := k.pick(want), res.TaskBusy[k.name]
				if pred < SimAbsTol && meas < SimAbsTol {
					continue
				}
				re := relErr(pred, meas)
				rep.add(Row{
					Suite: "chunked-sim-vs-model", Case: label, Check: "task-time", Task: k.name,
					Predicted: pred, Measured: meas, RelErr: re,
					Pass: re <= SimRelTol,
				})
			}
			maxKind, sum := 0.0, 0.0
			for _, b := range res.TaskBusy {
				sum += b
				if b > maxKind {
					maxKind = b
				}
			}
			rep.add(Row{
				Suite: "chunked-sim-vs-model", Case: label, Check: "bound", Task: "makespan",
				Predicted: sum, Measured: res.Total,
				RelErr: relErr(sum, res.Total),
				Pass:   res.Total >= maxKind-SimAbsTol && res.Total <= sum+SimAbsTol,
				Note:   fmt.Sprintf("envelope [%.6g, %.6g], %d chunks", maxKind, sum, res.Chunks),
			})
		}
	}
	return rep, nil
}

// ChunkedEngineBound drives the continuous-batching scheduler with chunked
// prefill enabled and checks the structural guarantees the chunked admission
// path makes, on the engine's own trace:
//
//   - every prefill_chunk span consumed at most ChunkTokens prompt tokens
//     (the span's Step label records the chunk's token count), so no decode
//     step ever waited on more than one chunk's worth of prefill work;
//   - chunked admissions emit no monolithic prefill span at all — the
//     all-or-nothing stall chunking exists to remove is structurally absent;
//   - token conservation: the chunk token counts sum to exactly the prompt
//     tokens submitted, so bounding the steps dropped no work.
//
// These are virtual-structure checks on span labels and counts, never
// wall-clock ratios, so they hold under -race.
func ChunkedEngineBound() (*Report, error) {
	const (
		seed        = 17
		chunkTokens = 4
		longPrompt  = 37 // not a chunk multiple: exercises the short tail chunk
		shortPrompt = 6  // still > chunkTokens: chunks too
		requests    = 6
		genLen      = 8
	)
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<31, nil)
	if err != nil {
		return nil, err
	}
	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec)
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = 2
	scfg.QueueDepth = requests
	scfg.MaxNewTokens = genLen
	scfg.DefaultNewTokens = genLen
	scfg.ChunkTokens = chunkTokens
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}
	defer sched.Close()

	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	totalPrompt := 0
	for i := 0; i < requests; i++ {
		n := shortPrompt
		if i%3 == 0 {
			n = longPrompt
		}
		totalPrompt += n
		prompt := make([]int, n)
		for j := range prompt {
			prompt[j] = rng.Intn(cfg.Vocab)
		}
		st, err := sched.Submit(ctx, serve.Request{Prompt: prompt, MaxNewTokens: genLen})
		if err != nil {
			return nil, fmt.Errorf("conformance: submit %d: %w", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Wait(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, fmt.Errorf("conformance: request failed: %w", err)
	}

	spans := rec.Spans()
	rep := &Report{}
	chunkSpans, monolithic, sumTokens, maxChunk := 0, 0, 0, 0
	for _, s := range spans {
		switch s.Name {
		case xtrace.TaskPrefillChunk:
			chunkSpans++
			sumTokens += s.Step
			if s.Step > maxChunk {
				maxChunk = s.Step
			}
		case xtrace.TaskPrefill:
			monolithic++
		}
	}
	rep.add(Row{
		Suite: "chunked-engine", Case: "bursty-mix", Check: "bound", Task: "chunk-tokens",
		Predicted: chunkTokens, Measured: float64(maxChunk),
		Pass: chunkSpans > 0 && maxChunk <= chunkTokens && maxChunk > 0,
		Note: fmt.Sprintf("%d prefill_chunk spans, largest %d tokens", chunkSpans, maxChunk),
	})
	rep.add(Row{
		Suite: "chunked-engine", Case: "bursty-mix", Check: "presence", Task: xtrace.TaskPrefill,
		Predicted: 0, Measured: float64(monolithic),
		Pass: monolithic == 0,
		Note: "chunked admissions must not fall back to monolithic prefill",
	})
	rep.add(Row{
		Suite: "chunked-engine", Case: "bursty-mix", Check: "bound", Task: "token-conservation",
		Predicted: float64(totalPrompt), Measured: float64(sumTokens),
		RelErr: relErr(float64(totalPrompt), float64(sumTokens)),
		Pass:   sumTokens == totalPrompt,
		Note:   fmt.Sprintf("%d prompt tokens submitted across %d requests", totalPrompt, requests),
	})

	// Minimum chunk-span count: every request needs at least
	// ceil(prompt/chunk) chunks (prefix hits could lower it, but the prompts
	// here share no prefix).
	minSpans := 0
	for i := 0; i < requests; i++ {
		n := shortPrompt
		if i%3 == 0 {
			n = longPrompt
		}
		minSpans += (n + chunkTokens - 1) / chunkTokens
	}
	rep.add(Row{
		Suite: "chunked-engine", Case: "bursty-mix", Check: "bound", Task: "chunk-count",
		Predicted: float64(minSpans), Measured: float64(chunkSpans),
		Pass: chunkSpans >= minSpans,
		Note: "at least ceil(prompt/chunk) chunk spans per admission",
	})
	sortRowsStable(rep)
	return rep, nil
}

// sortRowsStable orders rows for deterministic report output.
func sortRowsStable(rep *Report) {
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Case != b.Case {
			return a.Case < b.Case
		}
		return a.Task < b.Task
	})
}
