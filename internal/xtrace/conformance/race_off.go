//go:build !race

package conformance

// raceEnabled reports whether the race detector instruments this build; see
// race_on.go for why wall-clock ratio checks are demoted when it does.
const raceEnabled = false
