//go:build race

package conformance

// raceEnabled is true when the race detector instruments this build. The
// detector adds per-memory-access overhead to hand-written Go loops (the
// dequantization and attention kernels slow ~10x) while runtime-implemented
// block copies are checked once per call, so cross-task wall-clock ratios
// measured under -race are skewed by large, path-dependent factors in both
// directions. The ratio checks (argmax, order, scale) are therefore demoted
// to informational in race builds; CI enforces them in the native
// conformance run that produces the error-table artifact. Structural
// presence checks, the sim equality arm, and the serve bound checks remain
// enforced under -race.
const raceEnabled = true
