// Package conformance proves the Eq. 2 performance model against the two
// executable substrates: the discrete-event simulator and the live
// functional engine. All three views — analytical estimator, simulated
// schedule, traced engine run — speak the same six-task vocabulary
// (load_weight, load_cache, load_activation, store_cache,
// store_activation, compute), so the suite can assert, per strategy:
//
//   - sim vs model: the simulator's per-task busy time equals the
//     estimator components it was seeded with, near-exactly (the DES adds
//     contention to the *composition*, never to per-task service times);
//   - engine vs model: after calibrating a synthetic hw.Platform from
//     traced engine runs, the estimator's relative task ordering and the
//     Eq. 2 argmax task agree with the measured decode-window span totals
//     across a policy grid (quantization on/off, attention placement,
//     batch sizes);
//   - serve vs admission model: the PR 3 StepCostModel / AdmissionModel
//     predictions bound the traced actuals (peak estimate >= arena peak,
//     TPOT prediction within 2x of the measured mean).
//
// Wall-clock checks on the engine are statements about *ratios*, never
// absolute times, and only fire above explicit noise margins, so the suite
// stays stable under -race and loaded CI machines.
package conformance

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/threadpool"
	"repro/internal/trace"
	"repro/internal/xtrace"
)

// Tolerances and noise margins. The simulator executes the estimator's own
// component durations, so only float accumulation separates the two views.
// The engine is real wall clock: ordering assertions require the model to
// predict a decisive gap before they fire.
const (
	// SimRelTol bounds |sim - model| / model for per-task busy times.
	SimRelTol = 1e-6
	// SimAbsTol is the absolute floor below which tasks are not compared
	// (both views agree the task is nil).
	SimAbsTol = 1e-12

	// ArgmaxMargin: the Eq. 2 argmax check fires only when the predicted
	// leader exceeds the runner-up by this factor.
	ArgmaxMargin = 1.5
	// PairMargin: a pairwise ordering check fires only when the predicted
	// ratio between the two tasks is at least this factor.
	PairMargin = 3.0
	// NoiseFloor: tasks predicted below this fraction of the predicted
	// maximum are too small to time reliably and are never ordered.
	NoiseFloor = 0.05

	// TPOTFactor bounds the serve-layer check: the step-cost model's TPOT
	// prediction must land within this factor of the measured mean.
	TPOTFactor = 2.0
)

// Row is one conformance check: a prediction, a measurement, and a verdict.
// Informational rows (Check == "error") carry the measured-vs-predicted
// relative error for the CI artifact table without asserting anything.
type Row struct {
	Suite     string  // "sim-vs-model", "engine-vs-model", "serve-bounds"
	Case      string  // strategy / policy label
	Check     string  // "task-time", "argmax", "order", "bound", "error"
	Task      string  // task name or "a>b" pair
	Predicted float64 // model view (seconds, or bytes for memory bounds)
	Measured  float64 // substrate view
	RelErr    float64 // |measured-predicted| / predicted (0 when predicted 0)
	Pass      bool
	Note      string
}

// Report collects the rows of one or more suites.
type Report struct {
	Rows []Row
}

func (r *Report) add(row Row) { r.Rows = append(r.Rows, row) }

// Failures returns the asserting rows that did not pass.
func (r *Report) Failures() []Row {
	var out []Row
	for _, row := range r.Rows {
		if !row.Pass && row.Check != "error" {
			out = append(out, row)
		}
	}
	return out
}

func relErr(pred, meas float64) float64 {
	if pred == 0 {
		if meas == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(meas-pred) / math.Abs(pred)
}

// --- sim vs model ---------------------------------------------------------

// simCase is one (strategy, profile) grid point.
type simCase struct {
	label string
	strat perfmodel.Strategy
	exec  perfmodel.ExecProfile
}

func simGrid() []simCase {
	fusedLMO := perfmodel.LMOffloadProfile()
	fusedLMO.FusedQuantKernels = true
	fusedFlex := perfmodel.FlexGenProfile()
	fusedFlex.FusedQuantKernels = true
	return []simCase{
		{"flexgen/kv4", perfmodel.Strategy{WeightsGPUPct: 0.2, QuantKV: true, KVBits: 4, GroupSize: 64}, perfmodel.FlexGenProfile()},
		{"lmoffload/w4+kv4", perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}, perfmodel.LMOffloadProfile()},
		{"zero/stream", perfmodel.Strategy{WeightsGPUPct: 0, GroupSize: 64}, perfmodel.ZeROProfile()},
		{"lmoffload/cpu-attn", perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.4, GroupSize: 64}, perfmodel.LMOffloadProfile()},
		{"flexgen/w2", perfmodel.Strategy{WeightsGPUPct: 0.75, QuantWeights: true, WeightBits: 2, GroupSize: 64}, perfmodel.FlexGenProfile()},
		// Fused quantized-domain kernel arms: the standalone dequant passes
		// collapse into the compute term (FusedQuantKernels), and the sim
		// must track the folded accounting to the same hard tolerance.
		{"lmoffload/fused-w4+kv4", perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}, fusedLMO},
		{"flexgen/fused-kv4", perfmodel.Strategy{WeightsGPUPct: 0.2, QuantKV: true, KVBits: 4, GroupSize: 64}, fusedFlex},
	}
}

// simExpected maps the simulator's TaskBusy kinds onto the estimator
// components that seeded them. TaskBusy is normalized per (layer, token),
// exactly the unit the component accessors return.
func simExpected(e *perfmodel.Estimator) map[string]float64 {
	parts := e.Parts()
	kb := float64(e.Work.NumBatches)
	exp := map[string]float64{
		"load_weight": e.WeightUpTime(),
		"load_cache":  e.KVUpTime(),
		"store_cache": e.KVDownTime(),
		"load_act":    e.ActUpTime(),
		"store_act":   e.ActDownTime(),
	}
	if d := e.DequanWgtPerToken(); d > 0 {
		exp["dequan_weight"] = d
	}
	if d := e.DequanOldCache().Total(); d > 0 {
		exp["dequan_cache"] = d
	}
	if q := e.QuanNewCache().Total(); q > 0 {
		exp["quan_cache"] = q
	}
	gpuCompute := parts.GPUCompute + e.Exec.StepOverhead*kb
	if parts.CPUCompute > 0 {
		exp["cpu_attn"] = parts.CPUCompute
		exp["gpu_mlp"] = gpuCompute
	} else {
		exp["compute"] = gpuCompute
	}
	return exp
}

// SimVsModel runs the simulator over a strategy × profile grid and checks
// that each task kind's busy time equals the estimator component it was
// derived from. This is the hard-equality arm of the suite: any drift means
// the sim's task construction diverged from Eqs. 2–24.
func SimVsModel() (*Report, error) {
	rep := &Report{}
	mod := model.OPT30B
	work := trace.Workload{PromptLen: 64, GenLen: 32, GPUBatch: 64, NumBatches: 10}
	for _, c := range simGrid() {
		est, err := perfmodel.New(hw.SingleGPUA100(), mod, work, c.strat, c.exec)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", c.label, err)
		}
		res, err := sim.SimulateDecode(est, 3)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", c.label, err)
		}
		exp := simExpected(est)
		// Every expected kind must appear with the expected busy time, and
		// the sim must not invent kinds the model does not predict.
		kinds := make([]string, 0, len(exp))
		for k := range exp {
			kinds = append(kinds, k)
		}
		for k := range res.TaskBusy {
			if _, ok := exp[k]; !ok {
				kinds = append(kinds, k)
			}
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			pred, meas := exp[k], res.TaskBusy[k]
			if pred < SimAbsTol && meas < SimAbsTol {
				continue
			}
			re := relErr(pred, meas)
			rep.add(Row{
				Suite: "sim-vs-model", Case: c.label, Check: "task-time", Task: k,
				Predicted: pred, Measured: meas, RelErr: re,
				Pass: re <= SimRelTol,
			})
		}
	}
	return rep, nil
}

// --- engine vs model ------------------------------------------------------

// engineRun holds one traced engine execution plus its derived decode-window
// view.
type engineRun struct {
	spans []xtrace.Span
	steps int // decode_step span count
}

// runEngine executes a tiny-model generation with tracing enabled and
// returns the recorded spans.
func runEngine(pol runtime.Policy, batch, prompt, gen int) (*engineRun, error) {
	cfg := model.Tiny()
	const seed = 7
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	pool := threadpool.MustNew(pol.IntraOp)
	eng, err := runtime.NewEngine(m, pol, 1<<31, pool)
	if err != nil {
		return nil, err
	}
	rec := xtrace.NewRecorder(0)
	eng.SetTracer(rec)
	w := trace.Workload{PromptLen: prompt, GenLen: gen, GPUBatch: batch, NumBatches: 1}
	prompts := w.Prompts(rand.New(rand.NewSource(seed)), cfg.Vocab)
	if _, err := eng.Generate(context.Background(), prompts, gen); err != nil {
		return nil, err
	}
	spans := rec.Spans()
	steps := 0
	for _, s := range spans {
		if s.Name == xtrace.TaskDecodeStep {
			steps++
		}
	}
	if steps == 0 {
		return nil, fmt.Errorf("conformance: engine run produced no decode steps")
	}
	return &engineRun{spans: spans, steps: steps}, nil
}

// decodeTotals sums the decode-window span time per merged Eq. 2 task,
// normalized per (layer, token). The prefill span's end marks the window
// start; quant/dequant child spans are nested inside their parent transfer
// span, so parent totals already merge them exactly as DecodeTasks does;
// the logits projection (compute with Layer < 0) is excluded because the
// model's per-layer decomposition has no such term.
func decodeTotals(run *engineRun, layers int) map[string]float64 {
	var prefillEnd time.Duration
	for _, s := range run.spans {
		if s.Name == xtrace.TaskPrefill && s.End() > prefillEnd {
			prefillEnd = s.End()
		}
	}
	sums := map[string]time.Duration{}
	for _, s := range run.spans {
		if s.Start < prefillEnd {
			continue
		}
		switch s.Name {
		case xtrace.TaskLoadWgt, xtrace.TaskLoadKV, xtrace.TaskStoreKV,
			xtrace.TaskLoadAct, xtrace.TaskStoreAct:
			sums[s.Name] += s.Dur
		case xtrace.TaskCompute:
			if s.Layer >= 0 {
				sums[s.Name] += s.Dur
			}
		}
	}
	norm := float64(run.steps) * float64(layers)
	out := make(map[string]float64, len(sums))
	for k, v := range sums {
		out[k] = v.Seconds() / norm
	}
	return out
}

// spanTotal sums the durations of all spans with the given name.
func spanTotal(spans []xtrace.Span, name string) (time.Duration, int) {
	var total time.Duration
	n := 0
	for _, s := range spans {
		if s.Name == name {
			total += s.Dur
			n++
		}
	}
	return total, n
}

// medianDur returns the median of ds (0 when empty). Tiny-model spans sit
// in the low microseconds, where GC pauses and scheduler preemption put
// heavy outliers into any mean; the median is the robust rate estimator
// calibration and the anchored checks share.
func medianDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// medianSpan returns the median duration of the named decode-window spans;
// keep filters further (nil keeps all).
func medianSpan(run *engineRun, name string, keep func(xtrace.Span) bool) time.Duration {
	var prefillEnd time.Duration
	for _, s := range run.spans {
		if s.Name == xtrace.TaskPrefill && s.End() > prefillEnd {
			prefillEnd = s.End()
		}
	}
	var ds []time.Duration
	for _, s := range run.spans {
		if s.Name == name && s.Start >= prefillEnd && (keep == nil || keep(s)) {
			ds = append(ds, s.Dur)
		}
	}
	return medianDur(ds)
}

// Calibrate derives a synthetic hw.Platform from traced tiny-model engine
// runs, so the analytical estimator can be evaluated against the same
// functional host the engine executes on. Three rates are measured:
//
//   - link bandwidth, from load_weight span time against the model-unit
//     byte volume those spans moved;
//   - sustained "GPU" FLOP rate, from decode-window per-layer compute
//     spans against the analytic FLOPs of the workload;
//   - quantization element rate, from a weight-quantized run's
//     dequant_weight spans against the elements they decompressed.
//
// MemBandwidth and Freq are set far above any measurable rate so the
// quantization model's min/max and post-process phases vanish — the engine
// has no separate copy phase, its group-wise kernels are one fused loop.
func Calibrate() (*hw.Platform, error) {
	const (
		batch  = 4
		prompt = 8
		gen    = 6
	)
	cfg := model.Tiny()
	base, err := runEngine(runtime.Policy{Prefetch: true, IntraOp: 2}, batch, prompt, gen)
	if err != nil {
		return nil, err
	}

	wMed := medianSpan(base, xtrace.TaskLoadWgt, nil)
	if wMed <= 0 {
		return nil, fmt.Errorf("conformance: calibration run recorded no weight loads")
	}
	linkBW := float64(cfg.LayerWeightBytes()) / wMed.Seconds()

	w := trace.Workload{PromptLen: prompt, GenLen: gen, GPUBatch: batch, NumBatches: 1}
	seqAvg := w.PromptLen + w.GenLen/2
	flopsPerSpan := cfg.AttnFlopsDecode(w, seqAvg) + cfg.MLPFlopsDecode(w)
	cMed := medianSpan(base, xtrace.TaskCompute, func(s xtrace.Span) bool { return s.Layer >= 0 })
	if cMed <= 0 {
		return nil, fmt.Errorf("conformance: calibration run recorded no decode compute spans")
	}
	flops := flopsPerSpan / cMed.Seconds()

	qpol := runtime.Policy{
		Prefetch: true, IntraOp: 2,
		QuantWeights: true, WeightCfg: quant.Config{Bits: 4, GroupSize: 32},
	}
	qrun, err := runEngine(qpol, batch, prompt, gen)
	if err != nil {
		return nil, err
	}
	dqMed := medianSpan(qrun, xtrace.TaskDequantWgt, nil)
	if dqMed <= 0 {
		return nil, fmt.Errorf("conformance: calibration run recorded no weight dequantization")
	}
	quantRate := float64(cfg.WeightsPerLayer()) / dqMed.Seconds()

	const negligible = 1e18 // kills the phases the engine does not have
	plat := &hw.Platform{
		Name: "engine-calibrated",
		GPUs: []hw.GPU{{
			Name:          "functional-host",
			MemBytes:      1 << 31,
			MemBandwidth:  negligible,
			Flops:         flops,
			Freq:          negligible,
			QuantElemRate: quantRate,
		}},
		CPU: hw.CPU{
			Name: "functional-host", Sockets: 1, Cores: 2, Threads: 2,
			MemBytes:      1 << 33,
			MemBandwidth:  negligible,
			Flops:         flops, // same silicon: "CPU" tasks run on the same host cores
			Freq:          negligible,
			QuantElemRate: quantRate,
		},
		Link:          hw.Link{Name: "host-memcpy", BandwidthPerDir: linkBW, Duplex: true},
		DiskBandwidth: 1e9,
	}
	if err := plat.Validate(); err != nil {
		return nil, fmt.Errorf("conformance: calibrated platform invalid: %w", err)
	}
	return plat, nil
}

// conformanceProfile is the execution profile of the calibrated platform:
// all efficiency factors 1 (the calibration already measured effective
// rates) and no per-batch step overhead.
func conformanceProfile() perfmodel.ExecProfile {
	return perfmodel.ExecProfile{
		Name:             "conformance",
		OverlapBeta:      0.95, // unused by DecodeTasks; must validate
		QuantKernelScale: 1, LinkEff: 1, CPUCompute: 1, CPUCopy: 1,
	}
}

// engineCase pairs a runtime policy with the Strategy that describes it to
// the model.
type engineCase struct {
	label  string
	pol    runtime.Policy
	strat  perfmodel.Strategy
	batch  int
	prompt int
	gen    int
	// fused marks policies running the quantized-domain kernels; the model
	// side gets FusedQuantKernels so the collapsed dequant terms line up.
	fused bool
}

// engineGrid covers the policy dimensions the functional engine supports:
// plain streaming, weight quantization, KV quantization, their combination,
// attention offloading, activation offloading, and a batch-size variation.
// The engine streams every layer's weights each step (wg = 0) and keeps the
// KV store host-resident (cg = 0); activations stay on the "GPU" unless the
// policy offloads them (hg = 1 or 0).
func engineGrid() []engineCase {
	q4 := quant.Config{Bits: 4, GroupSize: 32}
	gpuResident := perfmodel.Strategy{ActGPUPct: 1, GroupSize: 32}
	return []engineCase{
		{"fp32-stream", runtime.Policy{Prefetch: true, IntraOp: 2},
			gpuResident, 4, 8, 6, false},
		{"w4", runtime.Policy{Prefetch: true, IntraOp: 2, QuantWeights: true, WeightCfg: q4},
			perfmodel.Strategy{ActGPUPct: 1, QuantWeights: true, WeightBits: 4, GroupSize: 32}, 4, 8, 6, false},
		{"kv4", runtime.Policy{Prefetch: true, IntraOp: 2, QuantKV: true, KVCfg: q4},
			perfmodel.Strategy{ActGPUPct: 1, QuantKV: true, KVBits: 4, GroupSize: 32}, 4, 8, 6, false},
		{"w4+kv4", runtime.Policy{Prefetch: true, IntraOp: 2, QuantWeights: true, WeightCfg: q4, QuantKV: true, KVCfg: q4},
			perfmodel.Strategy{ActGPUPct: 1, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 32}, 4, 8, 6, false},
		{"cpu-attn", runtime.Policy{Prefetch: true, IntraOp: 2, AttnOnCPU: true, ActOnCPU: true},
			perfmodel.Strategy{AttnOnCPU: true, GroupSize: 32}, 4, 8, 6, false},
		{"act-cpu", runtime.Policy{Prefetch: true, IntraOp: 2, ActOnCPU: true},
			perfmodel.Strategy{GroupSize: 32}, 4, 8, 6, false},
		{"fp32-b8", runtime.Policy{Prefetch: true, IntraOp: 2},
			gpuResident, 8, 8, 6, false},
		// Fused quantized-domain kernels: no dequant spans may appear, and
		// the model must agree via its collapsed FusedQuantKernels terms.
		{"w4+kv4-fused", runtime.Policy{Prefetch: true, IntraOp: 2, QuantWeights: true, WeightCfg: q4, QuantKV: true, KVCfg: q4, QuantKernels: true},
			perfmodel.Strategy{ActGPUPct: 1, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 32}, 4, 8, 6, true},
	}
}

// taskMap flattens DecodeTasks into the span-name keyed view.
func taskMap(t perfmodel.TaskTimes) map[string]float64 {
	return map[string]float64{
		xtrace.TaskCompute:  t.Compute,
		xtrace.TaskLoadWgt:  t.LoadWeight,
		xtrace.TaskLoadKV:   t.LoadCache,
		xtrace.TaskStoreKV:  t.StoreCache,
		xtrace.TaskLoadAct:  t.LoadActivation,
		xtrace.TaskStoreAct: t.StoreActivation,
	}
}

func argmax(m map[string]float64) (string, float64, float64) {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	best, bestV, second := "", -1.0, 0.0
	for _, k := range names {
		v := m[k]
		if v > bestV {
			second = bestV
			best, bestV = k, v
		} else if v > second {
			second = v
		}
	}
	return best, bestV, second
}

// presenceSpans maps each prediction the model can make to the span names
// whose decode-window presence proves the engine executed that phase.
var presenceSpans = []struct {
	task string
	pred func(*perfmodel.Estimator) float64
}{
	{xtrace.TaskLoadWgt, func(e *perfmodel.Estimator) float64 { return e.WeightUpTime() }},
	{xtrace.TaskLoadKV, func(e *perfmodel.Estimator) float64 { return e.KVUpTime() }},
	{xtrace.TaskStoreKV, func(e *perfmodel.Estimator) float64 { return e.KVDownTime() }},
	{xtrace.TaskLoadAct, func(e *perfmodel.Estimator) float64 { return e.ActUpTime() }},
	{xtrace.TaskStoreAct, func(e *perfmodel.Estimator) float64 { return e.ActDownTime() }},
	{xtrace.TaskDequantWgt, func(e *perfmodel.Estimator) float64 { return e.DequanWgtPerToken() }},
	{xtrace.TaskDequantKV, func(e *perfmodel.Estimator) float64 { return e.DequanOldCache().Total() }},
	{xtrace.TaskQuantKV, func(e *perfmodel.Estimator) float64 { return e.QuanNewCache().Total() }},
}

// anchoredTasks are the tasks whose engine code path was rate-calibrated
// directly (compute spans against analytic FLOPs, load_weight spans against
// weight bytes). Only these support cross-task wall-clock ordering and
// absolute scale bands: the KV-store path runs through per-chunk
// reconstruction, checksumming, and (de)quantization whose fixed per-chunk
// constants dominate at tiny-model scale, so a single linear link-bandwidth
// term cannot place it on the same axis — those tasks are covered by the
// structural presence checks, the informational error table, and the
// sim-vs-model equality arm instead.
var anchoredTasks = []string{xtrace.TaskCompute, xtrace.TaskLoadWgt}

// ScaleBand bounds measured/predicted for rate-anchored tasks. Calibration
// pins both rates from the base run, so grid cases test whether the model
// tracks strategy-induced changes (quantized transfer volumes, dequant
// surcharges, batch scaling) to within this factor.
const ScaleBand = 3.0

// EngineVsModel calibrates a platform from the live engine and then checks,
// for every grid policy, that the estimator's Eq. 2 task decomposition
// agrees with the traced decode-window measurements on everything the model
// predicts decisively:
//
//   - presence: a task runs on the engine if and only if the model predicts
//     it nonzero under that strategy (KV transfers vanish with attention
//     offloading, dequant phases appear exactly with quantization, ...);
//   - argmax: when the model predicts a decisive Eq. 2 leader (ArgmaxMargin
//     over the runner-up) and the measurement is itself decisive, the two
//     must name the same task;
//   - ordering and scale: among the rate-anchored tasks, predicted ratios
//     of PairMargin or more must hold in the measurement, and each task's
//     measured time must stay within ScaleBand of its prediction.
//
// Per-task relative errors are reported informationally for the CI
// artifact.
func EngineVsModel() (*Report, error) {
	plat, err := Calibrate()
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	cfg := model.Tiny()
	for _, c := range engineGrid() {
		run, err := runEngine(c.pol, c.batch, c.prompt, c.gen)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", c.label, err)
		}
		meas := decodeTotals(run, cfg.Layers)
		w := trace.Workload{PromptLen: c.prompt, GenLen: c.gen, GPUBatch: c.batch, NumBatches: 1}
		prof := conformanceProfile()
		prof.FusedQuantKernels = c.fused
		est, err := perfmodel.New(plat, cfg, w, c.strat, prof)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", c.label, err)
		}
		pred := taskMap(est.DecodeTasks())

		// Informational error table, every task the model predicts nonzero.
		names := make([]string, 0, len(pred))
		for k := range pred {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			if pred[k] == 0 && meas[k] == 0 {
				continue
			}
			rep.add(Row{
				Suite: "engine-vs-model", Case: c.label, Check: "error", Task: k,
				Predicted: pred[k], Measured: meas[k], RelErr: relErr(pred[k], meas[k]),
				Pass: true, Note: "informational",
			})
		}

		// Structural presence: each phase runs on the engine iff the model
		// predicts it nonzero under this strategy.
		counts := decodeCounts(run)
		for _, p := range presenceSpans {
			predicted := p.pred(est)
			n := counts[p.task]
			rep.add(Row{
				Suite: "engine-vs-model", Case: c.label, Check: "presence", Task: p.task,
				Predicted: predicted, Measured: float64(n),
				Pass: (predicted > 0) == (n > 0),
				Note: fmt.Sprintf("%d spans in the decode window", n),
			})
		}

		// Eq. 2 argmax agreement, when both sides are decisive. A measured
		// near-tie with the predicted leader is noise, not disagreement; a
		// measured win by an unanchored (KV-path) task is the documented
		// per-chunk-constant divergence, noted but not failed — the sim arm
		// and the presence checks carry those tasks.
		predLead, predBest, predSecond := argmax(pred)
		if predSecond > 0 && predBest >= ArgmaxMargin*predSecond {
			measLead, measBest, _ := argmax(meas)
			disagree := measLead != predLead && measBest > 1.25*meas[predLead]
			anchoredLead := false
			for _, a := range anchoredTasks {
				if measLead == a {
					anchoredLead = true
				}
			}
			note := fmt.Sprintf("measured argmax %s", measLead)
			switch {
			case measLead != predLead && !disagree:
				note += " (within noise of the predicted leader)"
			case disagree && !anchoredLead:
				note += " (unanchored KV-path task; per-chunk constants, see package doc)"
			}
			pass, note := enforceWallClock(!(disagree && anchoredLead), note)
			rep.add(Row{
				Suite: "engine-vs-model", Case: c.label, Check: "argmax", Task: predLead,
				Predicted: predBest, Measured: meas[predLead],
				Pass: pass,
				Note: note,
			})
		}

		// Ordering and absolute scale bands for the rate-anchored tasks,
		// measured by median span duration (same estimator as calibration).
		med := map[string]float64{
			xtrace.TaskCompute: medianSpan(run, xtrace.TaskCompute,
				func(s xtrace.Span) bool { return s.Layer >= 0 }).Seconds(),
			xtrace.TaskLoadWgt: medianSpan(run, xtrace.TaskLoadWgt, nil).Seconds(),
		}
		anchored := anchoredTasks
		if c.fused {
			// Under fused kernels load_weight stages aliasing packed views:
			// the span holds no byte-proportional work (no copy, no dequant),
			// only fixed per-layer overhead, so it falls off the calibrated
			// link-bandwidth axis at tiny-model scale — same per-constant
			// argument that excludes the KV path (see anchoredTasks).
			anchored = []string{xtrace.TaskCompute}
		}
		for _, a := range anchored {
			for _, b := range anchored {
				if a == b || pred[a] == 0 || pred[a] < PairMargin*pred[b] {
					continue
				}
				pass, note := enforceWallClock(med[a] > med[b], "")
				rep.add(Row{
					Suite: "engine-vs-model", Case: c.label, Check: "order",
					Task:      fmt.Sprintf("%s>%s", a, b),
					Predicted: pred[a] / math.Max(pred[b], SimAbsTol),
					Measured:  med[a] / math.Max(med[b], SimAbsTol),
					Pass:      pass,
					Note:      note,
				})
			}
			if pred[a] > 0 && med[a] > 0 {
				ratio := med[a] / pred[a]
				pass, note := enforceWallClock(ratio >= 1/ScaleBand && ratio <= ScaleBand,
					fmt.Sprintf("measured/predicted %.2f", ratio))
				rep.add(Row{
					Suite: "engine-vs-model", Case: c.label, Check: "scale", Task: a,
					Predicted: pred[a], Measured: med[a], RelErr: relErr(pred[a], med[a]),
					Pass: pass,
					Note: note,
				})
			}
		}
	}
	return rep, nil
}

// enforceWallClock demotes a failed wall-clock ratio check to an
// informational pass when the race detector is instrumenting the build (see
// race_on.go); structural and virtual-time checks are never demoted.
func enforceWallClock(pass bool, note string) (bool, string) {
	if raceEnabled && !pass {
		if note != "" {
			note += "; "
		}
		return true, note + "not enforced under -race (instrumentation skews wall-clock ratios)"
	}
	return pass, note
}

// decodeCounts tallies decode-window span counts by name (dequant/quant
// child spans included), for the structural presence checks.
func decodeCounts(run *engineRun) map[string]int {
	var prefillEnd time.Duration
	for _, s := range run.spans {
		if s.Name == xtrace.TaskPrefill && s.End() > prefillEnd {
			prefillEnd = s.End()
		}
	}
	counts := map[string]int{}
	for _, s := range run.spans {
		if s.Start >= prefillEnd {
			counts[s.Name]++
		}
	}
	return counts
}

// Run executes the full conformance suite: the hard sim-vs-model equality
// grid, the calibrated engine-vs-model ordering grid, and the serve-layer
// admission/step-cost bound checks.
func Run() (*Report, error) {
	rep := &Report{}
	sims, err := SimVsModel()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, sims.Rows...)
	chunked, err := ChunkedSimVsModel()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, chunked.Rows...)
	cbound, err := ChunkedEngineBound()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, cbound.Rows...)
	eng, err := EngineVsModel()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, eng.Rows...)
	srv, err := ServeBounds()
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, srv.Rows...)
	return rep, nil
}
