package conformance

import (
	"testing"
)

// failuresText renders the failing rows of a report for test diagnostics.
func failuresText(t *testing.T, rep *Report) {
	t.Helper()
	for _, row := range rep.Failures() {
		t.Errorf("%s/%s %s %s: predicted %.6g measured %.6g (relerr %.3f) — %s",
			row.Suite, row.Case, row.Check, row.Task,
			row.Predicted, row.Measured, row.RelErr, row.Note)
	}
}

// TestSimVsModel asserts the hard-equality arm: every simulator task-busy
// total equals the estimator component that seeded it, across the full
// strategy × profile grid.
func TestSimVsModel(t *testing.T) {
	rep, err := SimVsModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("sim-vs-model produced no comparison rows")
	}
	failuresText(t, rep)
}

// TestChunkedSimVsModel asserts the chunked-prefill hard-equality arm: the
// DES per-kind busy totals equal the estimator's chunked closed form over
// the strategy × chunk-size grid, and every makespan sits inside its
// structural envelope.
func TestChunkedSimVsModel(t *testing.T) {
	rep, err := ChunkedSimVsModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("chunked-sim-vs-model produced no comparison rows")
	}
	failuresText(t, rep)
}

// TestChunkedEngineBound asserts the chunked serving structural guarantees:
// no prefill_chunk span exceeds the configured chunk budget, chunked
// admissions emit no monolithic prefill span, and the chunk token counts
// conserve the submitted prompt tokens exactly.
func TestChunkedEngineBound(t *testing.T) {
	rep, err := ChunkedEngineBound()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Fatalf("chunked-engine produced %d rows, want >= 4", len(rep.Rows))
	}
	failuresText(t, rep)
}

// TestEngineVsModel asserts the calibrated live-engine arm: structural span
// presence, decisive Eq. 2 argmax agreement, and order/scale agreement on
// the rate-anchored tasks.
func TestEngineVsModel(t *testing.T) {
	rep, err := EngineVsModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("engine-vs-model produced no comparison rows")
	}
	// The suite must exercise every grid case with at least one enforced
	// (non-informational) check.
	cases := map[string]int{}
	for _, row := range rep.Rows {
		if row.Check != "error" {
			cases[row.Case]++
		}
	}
	for _, c := range engineGrid() {
		if cases[c.label] == 0 {
			t.Errorf("case %s has no enforced checks", c.label)
		}
	}
	failuresText(t, rep)
}

// TestServeBounds asserts the serving-layer arm: the admission model's peak
// estimate upper-bounds the arena high-water mark, and the step-cost TPOT
// prediction brackets the measured mean.
func TestServeBounds(t *testing.T) {
	rep, err := ServeBounds()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 2 {
		t.Fatalf("serve-bounds produced %d rows, want >= 2", len(rep.Rows))
	}
	failuresText(t, rep)
}
