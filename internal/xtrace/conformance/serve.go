package conformance

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
)

// ServeBounds drives the continuous-batching scheduler over a steady batch
// of requests and checks that the PR 3 admission/step-cost models bound the
// traced actuals:
//
//   - the admission-time peak-arena estimate is an upper bound on the
//     arena's observed high-water mark (the model must never under-promise
//     memory, or admission control admits requests it cannot hold);
//   - the step-cost model's TPOT prediction, sampled while the batch is
//     busy, lands within TPOTFactor of the measured mean TPOT.
//
// The request load keeps the batch near full occupancy so the sampled
// prediction and the measured mean describe the same operating point.
func ServeBounds() (*Report, error) {
	const (
		seed     = 11
		slots    = 4
		requests = 12
		genLen   = 32
	)
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<31, nil)
	if err != nil {
		return nil, err
	}
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = slots
	scfg.QueueDepth = requests
	scfg.MaxNewTokens = genLen
	scfg.DefaultNewTokens = genLen
	scfg.AdmissionControl = true
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}
	defer sched.Close()

	// Sample the TPOT prediction while the batch is running; the final
	// metrics snapshot is taken after drain, when occupancy (and thus the
	// prediction) has returned to zero.
	stop := make(chan struct{})
	var samples []time.Duration
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		// The tiny model drains the whole batch in a few milliseconds;
		// sample well below that so at least one busy-batch snapshot lands.
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				if d := sched.Metrics().PredictedTPOT; d > 0 {
					samples = append(samples, d)
				}
			}
		}
	}()

	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for i := 0; i < requests; i++ {
		prompt := make([]int, 6)
		for j := range prompt {
			prompt[j] = rng.Intn(cfg.Vocab)
		}
		st, err := sched.Submit(ctx, serve.Request{Prompt: prompt, MaxNewTokens: genLen})
		if err != nil {
			close(stop)
			sampleWG.Wait()
			return nil, fmt.Errorf("conformance: submit %d: %w", i, err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := st.Wait(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(stop)
	sampleWG.Wait()
	close(errs)
	for err := range errs {
		return nil, fmt.Errorf("conformance: request failed: %w", err)
	}

	m2 := sched.Metrics()
	rep := &Report{}
	rep.add(Row{
		Suite: "serve-bounds", Case: "steady-batch", Check: "bound", Task: "peak-bytes",
		Predicted: float64(m2.PredictedPeakBytes), Measured: float64(m2.ArenaPeak),
		RelErr: relErr(float64(m2.PredictedPeakBytes), float64(m2.ArenaPeak)),
		Pass:   m2.PredictedPeakBytes >= m2.ArenaPeak,
		Note:   fmt.Sprintf("estimate ratio %.2f", m2.EstimateRatio),
	})

	measured := m2.Serve.TPOTMean
	if len(samples) == 0 || measured <= 0 {
		rep.add(Row{
			Suite: "serve-bounds", Case: "steady-batch", Check: "bound", Task: "tpot",
			Pass: false, Note: "no TPOT prediction sampled while the batch was busy",
		})
		return rep, nil
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	predicted := samples[len(samples)/2]
	ratio := float64(predicted) / float64(measured)
	rep.add(Row{
		Suite: "serve-bounds", Case: "steady-batch", Check: "bound", Task: "tpot",
		Predicted: predicted.Seconds(), Measured: measured.Seconds(),
		RelErr: relErr(predicted.Seconds(), measured.Seconds()),
		Pass:   ratio >= 1/TPOTFactor && ratio <= TPOTFactor,
		Note:   fmt.Sprintf("median of %d samples, ratio %.2f", len(samples), ratio),
	})
	return rep, nil
}
