// Package trace defines inference workloads: prompt and generation lengths,
// batch geometry, and the zig-zag block structure FlexGen and LM-Offload
// schedule over. It also generates synthetic token streams for the functional
// runtime.
package trace

import (
	"fmt"
	"math/rand"
	"sort"
)

// Workload is one offline-inference job: every prompt in the batch shares the
// same prompt length and generation length, matching the paper's evaluation
// methodology (prompt length standardized at 64, generation length varied).
type Workload struct {
	// PromptLen is s, the input sequence length.
	PromptLen int
	// GenLen is n, the number of tokens generated per prompt.
	GenLen int
	// GPUBatch is the per-iteration batch size resident on the GPU.
	GPUBatch int
	// NumBatches is the number of GPU batches traversing the layers together
	// in one zig-zag block.
	NumBatches int
}

// BlockSize returns bls, the zig-zag block size = GPUBatch × NumBatches.
func (w Workload) BlockSize() int { return w.GPUBatch * w.NumBatches }

// TotalTokens returns the number of tokens the workload generates, the
// numerator of the throughput metric (tokens/s).
func (w Workload) TotalTokens() int { return w.BlockSize() * w.GenLen }

// Validate reports malformed workloads.
func (w Workload) Validate() error {
	switch {
	case w.PromptLen <= 0:
		return fmt.Errorf("trace: prompt length must be positive, got %d", w.PromptLen)
	case w.GenLen <= 0:
		return fmt.Errorf("trace: generation length must be positive, got %d", w.GenLen)
	case w.GPUBatch <= 0:
		return fmt.Errorf("trace: GPU batch must be positive, got %d", w.GPUBatch)
	case w.NumBatches <= 0:
		return fmt.Errorf("trace: batch count must be positive, got %d", w.NumBatches)
	}
	return nil
}

// String formats the workload in the paper's notation.
func (w Workload) String() string {
	return fmt.Sprintf("s=%d n=%d bsz=%d bls=%d", w.PromptLen, w.GenLen, w.GPUBatch, w.BlockSize())
}

// PaperDefault is the motivation-study workload of §3.1: prompt 64,
// generation 128, GPU batch 64, block size 640.
func PaperDefault() Workload {
	return Workload{PromptLen: 64, GenLen: 128, GPUBatch: 64, NumBatches: 10}
}

// ParallelismStudy is the §4.1 workload: prompt 64, generation 8.
func ParallelismStudy() Workload {
	return Workload{PromptLen: 64, GenLen: 8, GPUBatch: 64, NumBatches: 10}
}

// MultiGPU is the §5.5 workload: prompt 256, generation 64.
func MultiGPU(gpus int) Workload {
	// Weak scaling: batch doubles with GPU count, starting from 32.
	return Workload{PromptLen: 256, GenLen: 64, GPUBatch: 32 * gpus, NumBatches: 4}
}

// GenLengthSweep returns the Table 3 generation-length axis.
func GenLengthSweep() []int { return []int{8, 16, 32, 64, 128} }

// Prompts produces deterministic synthetic token ID prompts for the
// functional runtime: batch rows of PromptLen tokens in [0, vocab).
func (w Workload) Prompts(rng *rand.Rand, vocab int) [][]int {
	if vocab <= 0 {
		panic(fmt.Sprintf("trace: vocab must be positive, got %d", vocab))
	}
	out := make([][]int, w.BlockSize())
	for i := range out {
		row := make([]int, w.PromptLen)
		for j := range row {
			row[j] = rng.Intn(vocab)
		}
		out[i] = row
	}
	return out
}

// Bucket groups prompts of nearby lengths so each bucket pads to its own
// maximum instead of the global one — the standard mitigation for FlexGen's
// fixed-shape batches when real prompt lengths vary.
type Bucket struct {
	// MaxLen is the padded length every prompt in the bucket assumes.
	MaxLen int
	// Count is the number of prompts assigned.
	Count int
	// PaddingTokens is the total padding the bucket introduces.
	PaddingTokens int
}

// Bucketize partitions prompt lengths into at most maxBuckets buckets using
// equal-population splits over the sorted lengths, and reports the padding
// each bucket pays. A single bucket reproduces global padding-to-max.
func Bucketize(lengths []int, maxBuckets int) ([]Bucket, error) {
	if len(lengths) == 0 {
		return nil, fmt.Errorf("trace: no prompt lengths")
	}
	if maxBuckets < 1 {
		return nil, fmt.Errorf("trace: need at least one bucket, got %d", maxBuckets)
	}
	for _, l := range lengths {
		if l <= 0 {
			return nil, fmt.Errorf("trace: non-positive prompt length %d", l)
		}
	}
	sorted := append([]int(nil), lengths...)
	sort.Ints(sorted)
	if maxBuckets > len(sorted) {
		maxBuckets = len(sorted)
	}
	var out []Bucket
	per := (len(sorted) + maxBuckets - 1) / maxBuckets
	for lo := 0; lo < len(sorted); lo += per {
		hi := lo + per
		if hi > len(sorted) {
			hi = len(sorted)
		}
		b := Bucket{MaxLen: sorted[hi-1], Count: hi - lo}
		for _, l := range sorted[lo:hi] {
			b.PaddingTokens += b.MaxLen - l
		}
		out = append(out, b)
	}
	return out, nil
}

// PaddingWaste sums the padding across buckets as a fraction of the useful
// tokens — the cost the bucket count trades against scheduling simplicity.
func PaddingWaste(buckets []Bucket, lengths []int) float64 {
	var useful, pad int
	for _, l := range lengths {
		useful += l
	}
	for _, b := range buckets {
		pad += b.PaddingTokens
	}
	if useful == 0 {
		return 0
	}
	return float64(pad) / float64(useful)
}
