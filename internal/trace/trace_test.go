package trace

import (
	"math/rand"
	"testing"
)

func TestPaperDefaultMatchesSection31(t *testing.T) {
	w := PaperDefault()
	if w.PromptLen != 64 || w.GenLen != 128 || w.GPUBatch != 64 {
		t.Errorf("PaperDefault = %+v", w)
	}
	if w.BlockSize() != 640 {
		t.Errorf("BlockSize = %d, want 640", w.BlockSize())
	}
	if w.TotalTokens() != 640*128 {
		t.Errorf("TotalTokens = %d, want %d", w.TotalTokens(), 640*128)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejectsBadWorkloads(t *testing.T) {
	bad := []Workload{
		{PromptLen: 0, GenLen: 1, GPUBatch: 1, NumBatches: 1},
		{PromptLen: 1, GenLen: 0, GPUBatch: 1, NumBatches: 1},
		{PromptLen: 1, GenLen: 1, GPUBatch: 0, NumBatches: 1},
		{PromptLen: 1, GenLen: 1, GPUBatch: 1, NumBatches: 0},
	}
	for _, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid workload", w)
		}
	}
}

func TestGenLengthSweep(t *testing.T) {
	sweep := GenLengthSweep()
	want := []int{8, 16, 32, 64, 128}
	if len(sweep) != len(want) {
		t.Fatalf("sweep = %v", sweep)
	}
	for i := range want {
		if sweep[i] != want[i] {
			t.Fatalf("sweep = %v, want %v", sweep, want)
		}
	}
}

func TestMultiGPUWeakScaling(t *testing.T) {
	w1, w4 := MultiGPU(1), MultiGPU(4)
	if w4.GPUBatch != 4*w1.GPUBatch {
		t.Errorf("weak scaling batch: 1 GPU %d, 4 GPUs %d", w1.GPUBatch, w4.GPUBatch)
	}
	if w1.PromptLen != 256 || w1.GenLen != 64 {
		t.Errorf("MultiGPU workload = %+v, want s=256 n=64", w1)
	}
}

func TestPromptsShapeAndRange(t *testing.T) {
	w := Workload{PromptLen: 5, GenLen: 2, GPUBatch: 3, NumBatches: 2}
	prompts := w.Prompts(rand.New(rand.NewSource(1)), 11)
	if len(prompts) != 6 {
		t.Fatalf("prompt rows = %d, want 6", len(prompts))
	}
	for _, row := range prompts {
		if len(row) != 5 {
			t.Fatalf("prompt length = %d, want 5", len(row))
		}
		for _, tok := range row {
			if tok < 0 || tok >= 11 {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
}

func TestPromptsDeterministic(t *testing.T) {
	w := PaperDefault()
	a := w.Prompts(rand.New(rand.NewSource(9)), 100)
	b := w.Prompts(rand.New(rand.NewSource(9)), 100)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Prompts not deterministic for equal seeds")
			}
		}
	}
}

func TestBucketizeReducesPadding(t *testing.T) {
	// Bimodal lengths: short chats and long documents.
	var lengths []int
	for i := 0; i < 50; i++ {
		lengths = append(lengths, 16+i%8)
	}
	for i := 0; i < 50; i++ {
		lengths = append(lengths, 480+i%32)
	}
	one, err := Bucketize(lengths, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := Bucketize(lengths, 4)
	if err != nil {
		t.Fatal(err)
	}
	w1 := PaddingWaste(one, lengths)
	w4 := PaddingWaste(four, lengths)
	if w4 >= w1 {
		t.Errorf("more buckets should cut padding: %.2f >= %.2f", w4, w1)
	}
	if w1 < 0.9 {
		t.Errorf("global padding on bimodal lengths should be huge, got %.2f", w1)
	}
	// Every prompt lands in exactly one bucket.
	total := 0
	for _, b := range four {
		total += b.Count
		if b.PaddingTokens < 0 {
			t.Errorf("negative padding in %+v", b)
		}
	}
	if total != len(lengths) {
		t.Errorf("buckets hold %d prompts, want %d", total, len(lengths))
	}
}

func TestBucketizeValidation(t *testing.T) {
	if _, err := Bucketize(nil, 2); err == nil {
		t.Error("empty lengths accepted")
	}
	if _, err := Bucketize([]int{4}, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := Bucketize([]int{0}, 1); err == nil {
		t.Error("zero-length prompt accepted")
	}
	// More buckets than prompts clamps.
	b, err := Bucketize([]int{5, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) > 2 {
		t.Errorf("buckets = %d, want <= 2", len(b))
	}
}
