package perfmodel

import (
	"testing"
)

// divergenceGrid spans strategies that light up different Eq. 2 tasks:
// pure streaming, partial placement, both quantizations, and attention
// offloading.
func divergenceGrid() []Strategy {
	return []Strategy{
		{GroupSize: 64},
		{WeightsGPUPct: 0.5, CacheGPUPct: 0.3, GroupSize: 64},
		{WeightsGPUPct: 0.2, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64},
		{AttnOnCPU: true, WeightsGPUPct: 0.4, GroupSize: 64},
		{WeightsGPUPct: 1, CacheGPUPct: 1, ActGPUPct: 1, GroupSize: 64},
	}
}

// TestTGenPaperIsTaskMax pins TGenPaper to the literal Eq. 2 composition:
// exactly the maximum of the six DecodeTasks components, no overhead, no β.
func TestTGenPaperIsTaskMax(t *testing.T) {
	for _, s := range divergenceGrid() {
		for _, exec := range []ExecProfile{FlexGenProfile(), ZeROProfile(), LMOffloadProfile()} {
			e := fixture(t, s, exec)
			if got, want := e.TGenPaper(), e.DecodeTasks().Max(); got != want {
				t.Errorf("%+v/%s: TGenPaper = %v, DecodeTasks().Max() = %v (must be identical)",
					s, exec.Name, got, want)
			}
		}
	}
}

// TestTGenBoundsTGenPaper pins the divergence direction documented on TGen:
// the calibrated estimate can only add to the paper's ideal-overlap bound
// (β ≥ 0 resurfaces unhidden work, StepOverhead ≥ 0 adds scheduling cost,
// and the resource-aggregated max dominates the per-task max).
func TestTGenBoundsTGenPaper(t *testing.T) {
	for _, s := range divergenceGrid() {
		for _, exec := range []ExecProfile{FlexGenProfile(), ZeROProfile(), LMOffloadProfile()} {
			e := fixture(t, s, exec)
			paper, beta := e.TGenPaper(), e.TGen()
			if beta < paper*(1-1e-12) {
				t.Errorf("%+v/%s: TGen %v < TGenPaper %v — calibrated model fell below the Eq. 2 bound",
					s, exec.Name, beta, paper)
			}
		}
	}
}

// TestTGenDivergenceIsTheOverlapPenalty checks the two knobs that separate
// the estimates actually separate them: with β > 0 and several busy
// resources TGen strictly exceeds TGenPaper, and zeroing β and StepOverhead
// closes the gap to the pure resource-max (which still dominates the task
// max only through aggregation).
func TestTGenDivergenceIsTheOverlapPenalty(t *testing.T) {
	// Streaming everything keeps the links and the GPU simultaneously busy.
	s := Strategy{WeightsGPUPct: 0, GroupSize: 64}
	e := fixture(t, s, LMOffloadProfile()) // β = 0.85
	if e.TGen() <= e.TGenPaper() {
		t.Errorf("β=%.2f with busy links: TGen %v should strictly exceed TGenPaper %v",
			e.Exec.OverlapBeta, e.TGen(), e.TGenPaper())
	}

	ideal := LMOffloadProfile()
	ideal.OverlapBeta = 0
	ideal.StepOverhead = 0
	ei := fixture(t, s, ideal)
	p := ei.Parts()
	gpu := p.GPUCompute + p.GPUQuant
	wantMax := max4(p.LinkUp, p.LinkDown, p.CPUCompute, gpu)
	if got := ei.TGen(); got != wantMax {
		t.Errorf("β=0, overhead=0: TGen = %v, want resource max %v", got, wantMax)
	}
	if gap := ei.TGen() - ei.TGenPaper(); gap < 0 {
		t.Errorf("β=0: TGen %v below TGenPaper %v", ei.TGen(), ei.TGenPaper())
	}
}
