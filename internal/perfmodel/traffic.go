package perfmodel

// Per-token I/O-traffic accounting, reproducing Table 1 of the paper.

// IOTraffic is the interconnect volume for one generated token across all
// layers, in bytes, split by tensor kind and direction.
type IOTraffic struct {
	// CPU -> GPU (upload).
	WeightsUp    float64
	KVCacheUp    float64
	ActivationUp float64
	// GPU -> CPU (offload).
	WeightsDown    float64
	KVCacheDown    float64
	ActivationDown float64
}

// TotalUp returns the upload volume per token.
func (t IOTraffic) TotalUp() float64 { return t.WeightsUp + t.KVCacheUp + t.ActivationUp }

// TotalDown returns the offload volume per token.
func (t IOTraffic) TotalDown() float64 {
	return t.WeightsDown + t.KVCacheDown + t.ActivationDown
}

// Total returns the full bidirectional volume per token.
func (t IOTraffic) Total() float64 { return t.TotalUp() + t.TotalDown() }

// Traffic computes the per-token I/O volumes for the estimator's strategy.
// Quantization shrinks the moved volumes by bits/16; attention offloading
// zeroes the KV-cache rows and forces the activation to cross both ways
// (Table 1's structure).
func (e *Estimator) Traffic() IOTraffic {
	l := float64(e.Mod.Layers)
	var tr IOTraffic
	tr.WeightsUp = e.layerWeightBytes() * e.Strat.WC() * e.Strat.weightQuantRatio() * l
	act := e.activationBytes() * l
	if e.Strat.AttnOnCPU {
		tr.ActivationUp = act
		tr.ActivationDown = act
		return tr
	}
	cpuFrac := 1 - e.Strat.CacheGPUPct
	tr.KVCacheUp = e.oldKVBytesAvg() * cpuFrac * e.Strat.kvQuantRatio() * l
	tr.KVCacheDown = e.newKVBytes() * cpuFrac * e.Strat.kvQuantRatio() * l
	actFrac := 1 - e.Strat.ActGPUPct
	tr.ActivationUp = act * actFrac
	tr.ActivationDown = act * actFrac
	return tr
}
