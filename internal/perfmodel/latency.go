package perfmodel

// End-to-end latency model (Eqs. 1–9) with the three overlap compositions.

// StepParts splits one layer's decode-step work by the resource that
// performs it, which is what the overlap composition operates on.
type StepParts struct {
	// LinkUp is CPU->GPU transfer time (weights, old KV, activations).
	LinkUp float64
	// LinkDown is GPU->CPU transfer time (new KV, activations).
	LinkDown float64
	// GPUCompute is attention (when on GPU) plus the MLP.
	GPUCompute float64
	// GPUQuant is the (de)quantization kernel time on the GPU.
	GPUQuant float64
	// CPUCompute is offloaded attention time (zero when attention is on
	// GPU).
	CPUCompute float64
}

// Parts computes the per-layer, per-token resource decomposition for an
// average decode step.
func (e *Estimator) Parts() StepParts {
	bw := e.linkBW()
	var p StepParts

	// Uploads: CPU-resident weight fraction (compressed if quantized), old
	// KV cache (unless attention is offloaded), and the activation.
	p.LinkUp = e.layerWeightBytes() * e.Strat.WC() * e.Strat.weightQuantRatio() / bw
	act := e.activationBytes()
	if e.Strat.AttnOnCPU {
		p.LinkUp += act / bw
		p.LinkDown += act / bw
	} else {
		cpuFrac := 1 - e.Strat.CacheGPUPct
		p.LinkUp += e.oldKVBytesAvg() * cpuFrac * e.Strat.kvQuantRatio() / bw
		p.LinkDown += e.newKVBytes() * cpuFrac * e.Strat.kvQuantRatio() / bw
		actFrac := 1 - e.Strat.ActGPUPct
		p.LinkUp += act * actFrac / bw
		p.LinkDown += act * actFrac / bw
	}

	// Compute: MLP always on GPU; attention on the strategy's device.
	seqAvg := e.Work.PromptLen + e.Work.GenLen/2
	attnFlops := e.Mod.AttnFlopsDecode(e.Work, seqAvg)
	mlpFlops := e.Mod.MLPFlopsDecode(e.Work)
	g := e.gpu()
	p.GPUCompute = mlpFlops / g.Flops
	if e.Strat.AttnOnCPU {
		p.CPUCompute = attnFlops / (e.Plat.CPU.Flops * e.Exec.CPUCompute)
	} else {
		p.GPUCompute += attnFlops / g.Flops
	}

	// Fused quantized-domain kernels dequantize inside the matmul, so their
	// surviving arithmetic belongs to the compute resource, not GPUQuant.
	p.GPUCompute += e.fusedDequanWork()
	p.GPUQuant = e.gpuQuantWorkPerLayerToken()
	return p
}

// DecodeTasks returns the paper's six-task view (Eq. 2 operands) with the
// quantization surcharges of Eqs. 4, 6 and 7 attached to the task that pays
// them.
func (e *Estimator) DecodeTasks() TaskTimes {
	bw := e.linkBW()
	var t TaskTimes

	t.LoadWeight = e.layerWeightBytes()*e.Strat.WC()*e.Strat.weightQuantRatio()/bw + e.DequanWgtPerToken()

	if !e.Strat.AttnOnCPU {
		cpuFrac := 1 - e.Strat.CacheGPUPct
		t.LoadCache = e.oldKVBytesAvg()*cpuFrac*e.Strat.kvQuantRatio()/bw + e.DequanOldCache().Total()
		t.StoreCache = e.newKVBytes()*cpuFrac*e.Strat.kvQuantRatio()/bw + e.QuanNewCache().Total()
	}

	act := e.activationBytes()
	if e.Strat.AttnOnCPU {
		t.LoadActivation = act / bw
		t.StoreActivation = act / bw
	} else {
		actFrac := 1 - e.Strat.ActGPUPct
		t.LoadActivation = act * actFrac / bw
		t.StoreActivation = act * actFrac / bw
	}

	p := e.Parts()
	t.Compute = p.GPUCompute + p.CPUCompute
	return t
}

// TGen composes the per-layer decode step time with the profile's
// partial-overlap model: the busiest resource bounds the step, and a β
// fraction of the remaining resources' work fails to hide behind it
// (per-layer synchronization, default-stream kernel serialization).
// β = 0 and StepOverhead = 0 recover the paper's ideal Eq. 2.
//
// TGen vs TGenPaper: TGen is the calibrated estimate and is what every
// consumer that acts on a prediction uses — Latency/GenerationLatency/
// Throughput here, the quantization-benefit decisions (decisions.go,
// quantcost.go), the pipeline stage planner (internal/pipeline), the
// latency curve (curve.go), the policy-tuning experiments (figure8), and
// the lmo-sim CLI's analytic column. TGenPaper is the uncorrected Eq. 2
// maximum, kept only for reporting how optimistic the paper's ideal-overlap
// assumption is (the validation experiment's "paper" column and the
// sim/conformance suites). TGen ≥ TGenPaper for any valid profile: β ≥ 0
// adds back unhidden work and StepOverhead ≥ 0 adds scheduling cost, while
// the resource-aggregated max it starts from is itself at least the
// per-task max (each Eq. 2 task's time is contained in one resource's
// total). latency_divergence_test.go pins both properties.
func (e *Estimator) TGen() float64 {
	p := e.Parts()
	gpu := p.GPUCompute + p.GPUQuant
	m := max4(p.LinkUp, p.LinkDown, p.CPUCompute, gpu)
	sum := p.LinkUp + p.LinkDown + p.CPUCompute + gpu
	return m + e.Exec.OverlapBeta*(sum-m) + e.stepOverhead()
}

// stepOverhead is the fixed per-layer-step scheduling cost, paid once per
// GPU batch in the block (Algorithm 1's k loop).
func (e *Estimator) stepOverhead() float64 {
	return e.Exec.StepOverhead * float64(e.Work.NumBatches)
}

// TGenSerial is the fully serialized step time (asynchronous execution
// disabled), the configuration §5.4 measures task times under.
func (e *Estimator) TGenSerial() float64 {
	p := e.Parts()
	return p.LinkUp + p.LinkDown + p.CPUCompute + p.GPUCompute + p.GPUQuant + e.stepOverhead()
}

func max4(a, b, c, d float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}

// TInit models Eq. 3: loading all weights from disk into host memory plus
// the one-time weight quantization (Eq. 12 summed over layers).
func (e *Estimator) TInit() float64 {
	load := float64(e.Mod.WeightBytes()) / e.Plat.DiskBandwidth
	return load + e.QuanPfWgt().Total()*float64(e.Mod.Layers)
}

// TPrefill is the per-layer prefill latency: processing the whole prompt for
// the block on the GPU, overlapping weight uploads and the KV-cache offload,
// plus the Eq. 5 quantization surcharge.
func (e *Estimator) TPrefill() float64 {
	g := e.gpu()
	s := float64(e.Work.PromptLen)
	bls := float64(e.Work.BlockSize())
	h1, h2 := float64(e.Mod.Hidden), float64(e.Mod.FFN)
	attnFlops := (4*s*s*h1 + 8*s*h1*h1) * bls
	mlpFlops := 4 * s * h1 * h2 * bls
	compute := (attnFlops + mlpFlops) / g.Flops

	load := e.layerWeightBytes() * e.Strat.WC() * e.Strat.weightQuantRatio() / e.linkBW()

	var kvStore float64
	if e.Strat.AttnOnCPU {
		kvStore = e.prefillKVBytes() / e.linkBW()
	} else {
		kvStore = e.prefillKVBytes() * (1 - e.Strat.CacheGPUPct) * e.Strat.kvQuantRatio() / e.linkBW()
	}

	t := compute
	if load > t {
		t = load
	}
	if kvStore > t {
		t = kvStore
	}
	return t + e.QuanPfCache().Total()
}

// Latency models Eq. 1: T = T_init + T_pf·l + T_gen·(n−1)·l.
func (e *Estimator) Latency() float64 {
	l := float64(e.Mod.Layers)
	n := float64(e.Work.GenLen)
	return e.TInit() + e.TPrefill()*l + e.TGen()*(n-1)*l
}

// GenerationLatency is Eq. 1 without T_init, the steady-state figure used
// for throughput comparisons (the paper measures offline inference after
// weights are resident).
func (e *Estimator) GenerationLatency() float64 {
	l := float64(e.Mod.Layers)
	n := float64(e.Work.GenLen)
	return e.TPrefill()*l + e.TGen()*(n-1)*l
}

// Throughput returns the paper's metric: generated tokens per second for the
// block, bls·n / T (§3.2 minimizes T/bls).
func (e *Estimator) Throughput() float64 {
	return float64(e.Work.TotalTokens()) / e.GenerationLatency()
}

// MemoryUse estimates the resident footprint in bytes.
type MemoryUse struct {
	GPU int64
	CPU int64
}

// Memory returns the steady-state placement footprint: weights, peak KV
// cache, and activations split by the strategy's percentages, plus GPU
// working buffers. Quantized CPU-resident tensors occupy their compressed
// size.
func (e *Estimator) Memory() MemoryUse {
	wBytes := float64(e.Mod.WeightBytes())
	kvBytes := float64(e.Mod.KVCacheBytes(e.Work))
	actBytes := e.activationBytes() * 2 // double-buffered per layer

	// GPU-resident weights stay compressed only when the strategy says so
	// (that is how LM-Offload fits more weights on the GPU — §5.2).
	gpuWeightRatio := 1.0
	if e.Strat.CompressGPUWeights {
		gpuWeightRatio = e.Strat.weightQuantRatio()
	}
	gpu := wBytes*e.Strat.WeightsGPUPct*gpuWeightRatio + kvBytes*e.Strat.CacheGPUPct + actBytes*e.Strat.ActGPUPct
	// Working buffers: double-buffered streamed layer weights, plus the
	// decode working set when attention runs on the GPU.
	gpu += e.layerWeightBytes() * 2
	if !e.Strat.AttnOnCPU {
		gpu += e.oldKVBytesAt(e.Work.GenLen) * 2
	}
	cpu := wBytes*e.Strat.WC()*e.Strat.weightQuantRatio() + kvBytes*(1-e.Strat.CacheGPUPct)*e.Strat.kvQuantRatio() + actBytes*(1-e.Strat.ActGPUPct)
	return MemoryUse{GPU: int64(gpu), CPU: int64(cpu)}
}

// TotalMemory returns the Table 3 "mem" column: the full deployment
// footprint across devices.
func (e *Estimator) TotalMemory() int64 {
	m := e.Memory()
	return m.GPU + m.CPU
}

// Fits reports whether the strategy respects both capacity limits.
func (e *Estimator) Fits() bool {
	m := e.Memory()
	return m.GPU <= e.gpu().MemBytes && m.CPU <= e.Plat.CPU.MemBytes
}

// PrefillParts exposes the prefill phase's per-layer components for the
// discrete-event simulator: the GPU compute over the whole prompt and the
// KV-cache offload volume's link time. (The weight upload component is
// WeightUpTime, shared with the decode path.)
func (e *Estimator) PrefillParts() (compute, kvDown float64) {
	g := e.gpu()
	s := float64(e.Work.PromptLen)
	bls := float64(e.Work.BlockSize())
	h1, h2 := float64(e.Mod.Hidden), float64(e.Mod.FFN)
	attnFlops := (4*s*s*h1 + 8*s*h1*h1) * bls
	mlpFlops := 4 * s * h1 * h2 * bls
	compute = (attnFlops+mlpFlops)/g.Flops + e.QuanPfCache().Total()

	if e.Strat.AttnOnCPU {
		kvDown = e.prefillKVBytes() / e.linkBW()
	} else {
		kvDown = e.prefillKVBytes() * (1 - e.Strat.CacheGPUPct) * e.Strat.kvQuantRatio() / e.linkBW()
	}
	return compute, kvDown
}

// TGenPaper is the literal Eq. 2 composition — the unmodified maximum over
// the six task times (DecodeTasks().Max(), exactly) — with no
// partial-overlap correction. Comparing it with TGen (β-calibrated) and the
// discrete-event simulator quantifies how optimistic the paper's idealized
// asynchrony assumption is. Nothing that acts on a prediction calls this:
// its callers are the validation experiment's "paper" column
// (internal/experiments/validation.go) and the sim/conformance test suites;
// every planning and serving path uses TGen. See TGen's doc comment for the
// full divergence contract.
func (e *Estimator) TGenPaper() float64 {
	return e.DecodeTasks().Max()
}
