package perfmodel

import (
	"math"
	"testing"
)

// fusedPair returns the same (strategy, profile) estimator with the
// FusedQuantKernels bit off and on.
func fusedPair(t *testing.T, s Strategy) (base, fused *Estimator) {
	t.Helper()
	base = fixture(t, s, LMOffloadProfile())
	p := LMOffloadProfile()
	p.FusedQuantKernels = true
	fused = fixture(t, s, p)
	return base, fused
}

func eq(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
		t.Errorf("%s = %g, want %g", name, got, want)
	}
}

// TestFusedCollapsesDequantPasses pins the term collapse: under fused
// kernels the standalone weight and old-KV dequantization passes vanish,
// new-KV quantization is untouched, and the compute term absorbs exactly
// the Normalize arithmetic of the collapsed passes (the PostProcess memory
// round-trips disappear — nothing is materialized).
func TestFusedCollapsesDequantPasses(t *testing.T) {
	s := Strategy{
		WeightsGPUPct: 0.2, CacheGPUPct: 0,
		QuantWeights: true, WeightBits: 4,
		QuantKV: true, KVBits: 4, GroupSize: 64,
	}
	base, fused := fusedPair(t, s)

	if got := fused.DequanWgt().Total(); got != 0 {
		t.Errorf("fused DequanWgt = %g, want 0", got)
	}
	if got := fused.DequanOldCache().Total(); got != 0 {
		t.Errorf("fused DequanOldCache = %g, want 0", got)
	}
	eq(t, "QuanNewCache", fused.QuanNewCache().Total(), base.QuanNewCache().Total())
	eq(t, "QuanPfWgt", fused.QuanPfWgt().Total(), base.QuanPfWgt().Total())
	eq(t, "QuanPfCache", fused.QuanPfCache().Total(), base.QuanPfCache().Total())

	// The surviving arithmetic is the Normalize phase of the unfused passes,
	// with the same per-batch multiplier the unfused weight pass pays.
	wgtNorm := base.DequanWgt().Normalize
	if !base.Exec.CacheDequantWeights {
		wgtNorm *= float64(base.Work.NumBatches)
	}
	kvNorm := base.DequanOldCache().Normalize
	eq(t, "fusedDequanWork", fused.fusedDequanWork(), wgtNorm+kvNorm)

	bp, fp := base.Parts(), fused.Parts()
	eq(t, "GPUCompute fold", fp.GPUCompute, bp.GPUCompute+wgtNorm+kvNorm)
	// GPUQuant loses the full collapsed passes (Normalize + PostProcess).
	eq(t, "GPUQuant drop", bp.GPUQuant-fp.GPUQuant,
		base.DequanWgtPerToken()+base.DequanOldCache().Total())
	eq(t, "LinkUp unchanged", fp.LinkUp, bp.LinkUp)
	eq(t, "LinkDown unchanged", fp.LinkDown, bp.LinkDown)

	// Net effect: total per-step work strictly drops (the PostProcess
	// round-trips are gone), so the serial composition must improve.
	if fused.TGenSerial() >= base.TGenSerial() {
		t.Errorf("TGenSerial fused=%g >= unfused=%g", fused.TGenSerial(), base.TGenSerial())
	}
}

// TestFusedTasksCollapse checks the six-task view: load_weight and
// load_cache shed their dequantization surcharges, compute gains the folded
// arithmetic, store_cache keeps the Eq. 7 quantization surcharge.
func TestFusedTasksCollapse(t *testing.T) {
	s := Strategy{
		WeightsGPUPct: 0.2,
		QuantWeights:  true, WeightBits: 4,
		QuantKV: true, KVBits: 4, GroupSize: 64,
	}
	base, fused := fusedPair(t, s)
	bt, ft := base.DecodeTasks(), fused.DecodeTasks()

	eq(t, "LoadWeight", ft.LoadWeight, bt.LoadWeight-base.DequanWgtPerToken())
	eq(t, "LoadCache", ft.LoadCache, bt.LoadCache-base.DequanOldCache().Total())
	eq(t, "StoreCache", ft.StoreCache, bt.StoreCache)
	eq(t, "Compute", ft.Compute, bt.Compute+fused.fusedDequanWork())
}

// TestFusedNoQuantNoOp: with nothing quantized the toggle changes no number.
func TestFusedNoQuantNoOp(t *testing.T) {
	base, fused := fusedPair(t, Strategy{WeightsGPUPct: 0.5, CacheGPUPct: 0.5})
	eq(t, "TGen", fused.TGen(), base.TGen())
	eq(t, "TGenSerial", fused.TGenSerial(), base.TGenSerial())
	eq(t, "Latency", fused.Latency(), base.Latency())
	if got := fused.fusedDequanWork(); got != 0 {
		t.Errorf("fusedDequanWork = %g, want 0", got)
	}
}
