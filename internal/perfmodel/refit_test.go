package perfmodel

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestCostModelsConcurrent is the -race regression for the cost models: the
// adapt refitter reads coefficients and predictions off the scheduler
// goroutine while the loop keeps observing. Run with -race this fails on any
// unsynchronized field access.
func TestCostModelsConcurrent(t *testing.T) {
	step := &StepCostModel{}
	prefill := &PrefillCostModel{}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				step.Observe(1+(i+g)%4, time.Duration(1+i%7)*time.Millisecond)
				prefill.Observe(1+(i+g)%32, time.Duration(1+i%5)*time.Millisecond)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				step.Ready()
				step.Coefficients()
				step.PredictTPOT(3)
				step.PredictDrain(100, 3)
				prefill.Ready()
				prefill.Coefficients()
				prefill.Predict(16)
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if !step.Ready() || !prefill.Ready() {
		t.Fatal("models should be ready after 2000 observations")
	}
}

// TestStepCostRegimeChange pins the decay rate the adapt loop depends on:
// after a sustained 2x step-cost shift, the fitted prediction must converge
// to within 10% of the new regime inside 60 samples (roughly twice the
// nominal ~30-step decay horizon), and must still be far from converged
// after only 5.
func TestStepCostRegimeChange(t *testing.T) {
	m := &StepCostModel{}
	oldStep := 10 * time.Millisecond
	newStep := 20 * time.Millisecond
	// Establish the old regime across two occupancies so the affine fit has
	// a real slope to unlearn.
	for i := 0; i < 100; i++ {
		occ := 2 + i%2
		m.Observe(occ, time.Duration(occ)*oldStep/2)
	}
	base := m.PredictTPOT(2)
	if math.Abs(base.Seconds()-oldStep.Seconds()) > 0.1*oldStep.Seconds() {
		t.Fatalf("old-regime prediction %v not near %v", base, oldStep)
	}
	// Shift: every step now costs 2x.
	converged := -1
	for i := 1; i <= 120; i++ {
		occ := 2 + i%2
		m.Observe(occ, time.Duration(occ)*newStep/2)
		pred := m.PredictTPOT(2)
		if converged < 0 && math.Abs(pred.Seconds()-newStep.Seconds()) <= 0.10*newStep.Seconds() {
			converged = i
		}
		if i == 5 && math.Abs(pred.Seconds()-newStep.Seconds()) <= 0.05*newStep.Seconds() {
			t.Fatalf("fit converged implausibly fast (%v after 5 samples): decay changed?", pred)
		}
	}
	if converged < 0 {
		t.Fatalf("prediction never converged to new regime %v within 120 samples (got %v)", newStep, m.PredictTPOT(2))
	}
	if converged > 60 {
		t.Fatalf("convergence took %d samples, want <= 60 (decay horizon drifted)", converged)
	}
	t.Logf("converged to 2x regime in %d samples", converged)
}

func TestEstCollectorWindow(t *testing.T) {
	c := NewEstCollector()
	c.SetWindowSize(8)
	// 20 exact observations, then 8 that are 2x off: the window must see
	// only the recent regime while lifetime stats keep the full history.
	for i := 0; i < 20; i++ {
		c.ObserveEstimate(EstTPOT, 1.0, 1.0)
	}
	for i := 0; i < 8; i++ {
		c.ObserveEstimate(EstTPOT, 1.0, 2.0)
	}
	if got := c.WindowAccuracy(EstTPOT).Median(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("window median = %g, want 2.0 (recent regime only)", got)
	}
	if got := c.Accuracy(EstTPOT).Median(); got != 1.0 {
		t.Fatalf("lifetime median = %g, want 1.0 (old regime dominates 28 samples)", got)
	}
	ws := c.WindowStats(EstTPOT)
	if ws.Count != 8 || ws.ActualMedian != 2.0 || ws.PredictedMedian != 1.0 {
		t.Fatalf("window stats = %+v, want count 8, actual 2.0, predicted 1.0", ws)
	}
	c.ResetWindow(EstTPOT)
	if c.WindowAccuracy(EstTPOT).Count() != 0 {
		t.Fatal("window survived reset")
	}
	if c.Accuracy(EstTPOT).Count() != 28 {
		t.Fatalf("lifetime count = %d, want 28 after window reset", c.Accuracy(EstTPOT).Count())
	}
	// Unrankable pairs are dropped from both views.
	c.ObserveEstimate(EstTPOT, 0, 1)
	if c.WindowAccuracy(EstTPOT).Count() != 0 || c.Accuracy(EstTPOT).Count() != 28 {
		t.Fatal("unrankable pair leaked into a view")
	}
	c.ObserveEstimate(EstTPOT, 3, 1)
	c.ResetWindows()
	if c.WindowStats(EstTPOT).Count != 0 {
		t.Fatal("ResetWindows left samples behind")
	}
}

func TestProfileRefitter(t *testing.T) {
	r := &ProfileRefitter{}
	if r.Factor() != 1 {
		t.Fatalf("empty refitter factor = %g, want 1", r.Factor())
	}
	for i := 0; i < 40; i++ {
		r.Observe(2.0, 1.0) // sustained 2x slowdown
	}
	if f := r.Factor(); math.Abs(f-2.0) > 0.05 {
		t.Fatalf("factor = %g, want ~2.0", f)
	}
	// Decayed: a regime change back to 1x pulls the factor down within the
	// decay horizon.
	for i := 0; i < 80; i++ {
		r.Observe(1.0, 1.0)
	}
	if f := r.Factor(); math.Abs(f-1.0) > 0.1 {
		t.Fatalf("factor after recovery = %g, want ~1.0", f)
	}
	r.Reset()
	if r.Factor() != 1 || r.Samples() != 0 {
		t.Fatal("reset did not clear the fit")
	}
	// Unrankable observations are dropped.
	r.Observe(-1, 1)
	r.Observe(1, 0)
	if r.Samples() != 0 {
		t.Fatal("non-positive pairs were counted")
	}
}

func TestRefitProfile(t *testing.T) {
	base := LMOffloadProfile()
	slow, err := RefitProfile(base, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.Validate(); err != nil {
		t.Fatalf("refit profile invalid: %v", err)
	}
	if slow.CPUCompute >= base.CPUCompute || slow.LinkEff >= base.LinkEff {
		t.Fatalf("2x refit must lower efficiency coefficients: %+v vs %+v", slow, base)
	}
	if slow.StepOverhead <= base.StepOverhead {
		t.Fatal("2x refit must raise step overhead")
	}
	// Extreme factors clamp instead of producing invalid profiles.
	for _, f := range []float64{1e-9, 1e9, maxRefitFactor * 2} {
		p, err := RefitProfile(base, f)
		if err != nil {
			t.Fatalf("factor %g: %v", f, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("factor %g produced invalid profile: %v", f, err)
		}
	}
	if _, err := RefitProfile(base, 0); err == nil {
		t.Fatal("zero factor must error")
	}
	if _, err := RefitProfile(base, math.NaN()); err == nil {
		t.Fatal("NaN factor must error")
	}
	// Identity factor keeps the profile's numbers.
	same, err := RefitProfile(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	if same.CPUCompute != base.CPUCompute || same.LinkEff != base.LinkEff || same.StepOverhead != base.StepOverhead {
		t.Fatalf("identity refit changed coefficients: %+v", same)
	}
}
