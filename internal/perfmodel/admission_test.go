package perfmodel

import (
	"math"
	"testing"
	"time"
)

func TestAdmissionModelSaturates(t *testing.T) {
	a := AdmissionModel{
		HiddenDim:     1 << 30,
		BytesPerElem:  8,
		ResidentBase:  math.MaxInt64 - 10,
		LayerBytes:    math.MaxInt64 / 2,
		WeightBuffers: 4,
		Slack:         1.5,
	}
	kv := a.SlotKVBytes(math.MaxInt32, math.MaxInt32)
	if kv < 0 {
		t.Fatalf("SlotKVBytes overflowed negative: %d", kv)
	}
	if kv != math.MaxInt64 {
		t.Fatalf("SlotKVBytes = %d, want saturation at MaxInt64", kv)
	}
	peak := a.PeakBytes(kv)
	if peak < 0 || peak != math.MaxInt64 {
		t.Fatalf("PeakBytes = %d, want saturation at MaxInt64", peak)
	}
	if got := a.SlotKVBytes(-5, -7); got != 0 {
		t.Fatalf("negative lengths gave %d, want 0", got)
	}
}

func TestAdmissionModelMonotone(t *testing.T) {
	a := AdmissionModel{HiddenDim: 64, BytesPerElem: 4, ResidentBase: 1 << 20, LayerBytes: 1 << 17, WeightBuffers: 2, Slack: 1.2}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	prev := int64(-1)
	for n := 0; n <= 256; n += 16 {
		kv := a.SlotKVBytes(8, n)
		if kv <= prev {
			t.Fatalf("SlotKVBytes not strictly increasing at n=%d: %d <= %d", n, kv, prev)
		}
		if want := int64(2 * (8 + n) * 64 * 4); kv != want {
			t.Fatalf("SlotKVBytes(8, %d) = %d, want %d", n, kv, want)
		}
		if peak := a.PeakBytes(kv); peak < a.ResidentBase+2*a.LayerBytes+kv {
			t.Fatalf("PeakBytes(%d) = %d below unslacked sum", kv, peak)
		}
		prev = kv
	}
}

func TestAdmissionModelValidate(t *testing.T) {
	bad := []AdmissionModel{
		{HiddenDim: 0, BytesPerElem: 4, Slack: 1},
		{HiddenDim: 64, BytesPerElem: 0, Slack: 1},
		{HiddenDim: 64, BytesPerElem: 4, Slack: 0.5},
		{HiddenDim: 64, BytesPerElem: 4, Slack: 1, ResidentBase: -1},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid model", a)
		}
	}
}

func TestStepCostModelRecoversAffineFit(t *testing.T) {
	m := &StepCostModel{}
	const fixed, perSlot = 2 * time.Millisecond, 500 * time.Microsecond
	for i := 0; i < 100; i++ {
		b := 1 + i%4
		m.Observe(b, fixed+time.Duration(b)*perSlot)
	}
	if !m.Ready() {
		t.Fatal("model not ready after 100 samples")
	}
	for b := 1; b <= 8; b++ {
		want := fixed + time.Duration(b)*perSlot
		got := m.PredictTPOT(b)
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > want/10 {
			t.Fatalf("PredictTPOT(%d) = %v, want ~%v", b, got, want)
		}
	}
	if d := m.PredictDrain(100, 4); d <= 0 {
		t.Fatal("PredictDrain returned nothing with a ready model")
	}
}

func TestStepCostModelDegenerateOccupancy(t *testing.T) {
	m := &StepCostModel{}
	for i := 0; i < 50; i++ {
		m.Observe(3, 6*time.Millisecond)
	}
	got := m.PredictTPOT(3)
	if got < 5*time.Millisecond || got > 7*time.Millisecond {
		t.Fatalf("constant-occupancy prediction %v strayed from 6ms", got)
	}
	// Extrapolation with a degenerate fit must not predict negative or
	// shrinking cost.
	if m.PredictTPOT(10) < got {
		t.Fatal("degenerate fit predicts faster steps at higher occupancy")
	}
	var empty StepCostModel
	if empty.PredictTPOT(4) != 0 || empty.PredictDrain(10, 2) != 0 {
		t.Fatal("unready model must predict zero")
	}
}
