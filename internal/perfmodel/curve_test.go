package perfmodel

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

func TestLatencyCurveGrowsWithKVCache(t *testing.T) {
	e := fixture(t, Strategy{WeightsGPUPct: 0.55}, FlexGenProfile())
	curve := e.LatencyCurve()
	if len(curve) != e.Work.GenLen {
		t.Fatalf("curve length %d, want %d", len(curve), e.Work.GenLen)
	}
	// The old KV cache grows linearly, so the per-step time must be
	// strictly increasing without attention offloading.
	for i := 1; i < len(curve); i++ {
		if curve[i] <= curve[i-1] {
			t.Fatalf("curve not increasing at token %d: %g <= %g", i, curve[i], curve[i-1])
		}
	}
	// The averaged TGen sits inside the curve's range.
	tg := e.TGen()
	if tg < curve[0] || tg > curve[len(curve)-1] {
		t.Errorf("TGen %g outside curve range [%g, %g]", tg, curve[0], curve[len(curve)-1])
	}
}

func TestLatencyCurveAveragesToTGen(t *testing.T) {
	// The mean of the per-token curve should approximate the Eq. 18
	// averaged model (the curve is linear in t, so it matches closely).
	for _, s := range []Strategy{
		{WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64},
	} {
		e := fixture(t, s, FlexGenProfile())
		curve := e.LatencyCurve()
		var sum float64
		for _, v := range curve {
			sum += v
		}
		mean := sum / float64(len(curve))
		if r := mean / e.TGen(); r < 0.95 || r > 1.05 {
			t.Errorf("%v: curve mean / TGen = %.3f, want ~1", s, r)
		}
	}
}

func TestLatencyCurveCPUAttentionGrowsViaCompute(t *testing.T) {
	e := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}, FlexGenProfile())
	curve := e.LatencyCurve()
	// With attention on the CPU the link sees no KV, but the CPU attention
	// work still grows with the sequence.
	if curve[len(curve)-1] <= curve[0] {
		t.Errorf("CPU-attention curve flat: %g .. %g", curve[0], curve[len(curve)-1])
	}
	p0 := e.PartsAt(0)
	pN := e.PartsAt(e.Work.GenLen - 1)
	if p0.LinkUp != pN.LinkUp {
		t.Errorf("link time changed with tokens under attention offloading: %g vs %g", p0.LinkUp, pN.LinkUp)
	}
	if pN.CPUCompute <= p0.CPUCompute {
		t.Errorf("CPU attention did not grow: %g <= %g", pN.CPUCompute, p0.CPUCompute)
	}
}

func TestCurveOnMultiGPUPlatformModel(t *testing.T) {
	// Smoke the curve on the other platform/model pair.
	e, err := New(hw.MultiGPUV100().WithGPUCount(1), model.OPT13B, trace.MultiGPU(1),
		Strategy{WeightsGPUPct: 0.2}, LMOffloadProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range e.LatencyCurve() {
		if v <= 0 {
			t.Fatal("non-positive curve point")
		}
	}
}
