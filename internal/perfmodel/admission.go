package perfmodel

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// AdmissionModel estimates, before a request is admitted, the peak GPU-arena
// footprint serving it will cause — the online counterpart of the paper's
// memory-capacity constraints (Eqs. 17–19). The serving engine stages at most
// one slot's KV working copy at a time (its per-layer decode is serial per
// slot) and keeps at most WeightBuffers streamed layer buffers in flight, so
// the peak decomposes into
//
//	peak = ResidentBase + WeightBuffers·LayerBytes + slack·maxSlotKV
//
// where maxSlotKV is the largest single slot's staged K+V bytes at its final
// sequence length (2·(s+n)·h·bytesPerElem, the per-layer term of Eq. 17) and
// slack absorbs transient double-buffering during rollback/retry.
//
// All arithmetic saturates instead of overflowing, so adversarial shapes
// (fuzzed prompt lengths, giant hidden sizes) can never produce a negative
// estimate or wrap around into a spuriously small one.
type AdmissionModel struct {
	// HiddenDim and BytesPerElem describe the model's KV row geometry. The
	// staged working copy is always float32 in the functional engine, so
	// BytesPerElem is 4 there; the analytical model keeps it a parameter.
	HiddenDim    int
	BytesPerElem int

	// ResidentBase is the arena footprint that exists independent of any
	// request: pinned resident layers (the wg split's GPU share).
	ResidentBase int64
	// LayerBytes is the largest streamed layer's staged weight buffer.
	LayerBytes int64
	// WeightBuffers is how many streamed layer buffers can be in flight at
	// once (2 under prefetch: current + next).
	WeightBuffers int
	// Slack scales the KV term (≥ 1); it absorbs the transient second copy a
	// retried fetch can hold while the first is being released.
	Slack float64
}

// Validate reports malformed parameters.
func (a AdmissionModel) Validate() error {
	if a.HiddenDim <= 0 || a.BytesPerElem <= 0 {
		return fmt.Errorf("perfmodel: admission model geometry %d/%d must be positive", a.HiddenDim, a.BytesPerElem)
	}
	if a.ResidentBase < 0 || a.LayerBytes < 0 || a.WeightBuffers < 0 {
		return fmt.Errorf("perfmodel: admission model byte terms must be non-negative")
	}
	if a.Slack < 1 {
		return fmt.Errorf("perfmodel: admission slack %g must be >= 1", a.Slack)
	}
	return nil
}

// SlotKVBytes returns the staged K+V working-copy size of one slot once it
// has cached promptLen+newTokens tokens: 2·(s+n)·h·bytes, saturating.
// Negative lengths are treated as zero.
func (a AdmissionModel) SlotKVBytes(promptLen, newTokens int) int64 {
	if promptLen < 0 {
		promptLen = 0
	}
	if newTokens < 0 {
		newTokens = 0
	}
	tokens := satAdd64(int64(promptLen), int64(newTokens))
	per := satMul64(2, satMul64(int64(a.HiddenDim), int64(a.BytesPerElem)))
	return satMul64(tokens, per)
}

// PeakBytes returns the predicted peak arena use when the largest staged
// slot holds kvBytes, saturating on overflow.
//
// Shared-prefix KV reuse does not lower this bound, and deliberately so:
// seeding a slot from the prefix cache skips suffix-prefill *compute*, but
// the slot's store still receives the full prompt's KV, and every decode
// step stages the full (prompt+generated) working copy into the arena. The
// prefill itself never charges its live KV to the arena (it is host-side
// until store_cache). So the admission-time estimate at final lengths
// remains a valid upper bound on the arena high-water mark with reuse on —
// the property the serve-bounds conformance suite checks. Reused bytes show
// up in the *time* models instead: PrefillCostModel predicts the suffix
// prefill stall, and drain estimates fold the queued suffix backlog in.
func (a AdmissionModel) PeakBytes(kvBytes int64) int64 {
	if kvBytes < 0 {
		kvBytes = 0
	}
	peak := satAdd64(a.ResidentBase, satMul64(int64(a.WeightBuffers), a.LayerBytes))
	return satAdd64(peak, satScale(kvBytes, a.Slack))
}

// ScaledKV returns the slack-scaled KV pressure term of PeakBytes — the
// quantity watermark comparisons use against the arena's KV headroom.
func (a AdmissionModel) ScaledKV(kvBytes int64) int64 {
	if kvBytes < 0 {
		kvBytes = 0
	}
	return satScale(kvBytes, a.Slack)
}

// satAdd64 adds, clamping at MaxInt64.
func satAdd64(x, y int64) int64 {
	if x > math.MaxInt64-y {
		return math.MaxInt64
	}
	return x + y
}

// satMul64 multiplies non-negative operands, clamping at MaxInt64.
func satMul64(x, y int64) int64 {
	if x == 0 || y == 0 {
		return 0
	}
	if x > math.MaxInt64/y {
		return math.MaxInt64
	}
	return x * y
}

// satScale multiplies a non-negative byte count by a factor ≥ 0, clamping.
func satScale(x int64, f float64) int64 {
	v := float64(x) * f
	if v >= math.MaxInt64 {
		return math.MaxInt64
	}
	if v < 0 {
		return 0
	}
	return int64(v)
}

// StepCostModel predicts per-step decode latency as a function of batch
// occupancy by fitting observed steps to the Eq. 2 shape: with per-slot
// serial attention, a step costs a fixed part (weight streaming, which is
// shared across slots) plus a per-slot part (load_cache + compute +
// store_cache per sequence), i.e. T_step(b) ≈ fixed + perSlot·b. The fit is
// an exponentially-decayed least squares over (occupancy, duration) samples,
// so the predictor tracks drift (degradation rungs change both
// coefficients). All methods are safe for concurrent use: the scheduler
// observes from its loop goroutine while the background adapt refitter reads
// coefficients and predictions off it.
type StepCostModel struct {
	mu sync.Mutex
	// decayed sufficient statistics for least squares on y = α + β·b
	n, sb, sbb, sy, sby float64
	samples             int64
}

// stepCostDecay is the per-observation decay: ~0.97 keeps roughly the last
// 30 steps dominant, long enough to smooth fault noise and short enough to
// track a degradation rung within a burst.
const stepCostDecay = 0.97

// stepCostMinSamples gates predictions until the fit has seen enough steps.
const stepCostMinSamples = 8

// Observe folds one decode step at the given occupancy into the fit.
func (m *StepCostModel) Observe(occupancy int, d time.Duration) {
	if occupancy <= 0 || d <= 0 {
		return
	}
	b, y := float64(occupancy), d.Seconds()
	m.mu.Lock()
	m.n = m.n*stepCostDecay + 1
	m.sb = m.sb*stepCostDecay + b
	m.sbb = m.sbb*stepCostDecay + b*b
	m.sy = m.sy*stepCostDecay + y
	m.sby = m.sby*stepCostDecay + b*y
	m.samples++
	m.mu.Unlock()
}

// Ready reports whether the model has enough samples to predict.
func (m *StepCostModel) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ready()
}

func (m *StepCostModel) ready() bool { return m.samples >= stepCostMinSamples }

// Coefficients returns the fitted (fixed, perSlot) parts in seconds. Before
// Ready, or when the observed occupancies are degenerate (all equal), the
// per-slot part is folded into an occupancy-independent mean.
func (m *StepCostModel) Coefficients() (fixed, perSlot float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coefficients()
}

func (m *StepCostModel) coefficients() (fixed, perSlot float64) {
	if m.n <= 0 {
		return 0, 0
	}
	det := m.n*m.sbb - m.sb*m.sb
	mean := m.sy / m.n
	if det <= 1e-12*m.n*m.sbb {
		return mean, 0
	}
	perSlot = (m.n*m.sby - m.sb*m.sy) / det
	fixed = (m.sy - perSlot*m.sb) / m.n
	if perSlot < 0 {
		// Noise can tilt the fit negative; an occupancy-independent mean is
		// the safe fallback (never predicts faster steps for bigger batches).
		return mean, 0
	}
	if fixed < 0 {
		fixed = 0
	}
	return fixed, perSlot
}

// PredictTPOT returns the predicted time-per-output-token at the given
// occupancy (each step yields one token per active slot, so TPOT equals step
// time). Zero before the model is Ready.
func (m *StepCostModel) PredictTPOT(occupancy int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.predictTPOT(occupancy)
}

func (m *StepCostModel) predictTPOT(occupancy int) time.Duration {
	if !m.ready() || occupancy <= 0 {
		return 0
	}
	fixed, perSlot := m.coefficients()
	return time.Duration((fixed + perSlot*float64(occupancy)) * float64(time.Second))
}

// PredictDrain estimates how long the server needs to finish remainingTokens
// across the given occupancy — the Retry-After hint for rejected requests.
// Zero when the model is not Ready or there is nothing to drain.
func (m *StepCostModel) PredictDrain(remainingTokens int64, occupancy int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if remainingTokens <= 0 || occupancy <= 0 || !m.ready() {
		return 0
	}
	steps := (remainingTokens + int64(occupancy) - 1) / int64(occupancy)
	return time.Duration(steps) * m.predictTPOT(occupancy)
}

// PrefillCostModel predicts admission prefill latency as a function of the
// tokens actually prefilled — with shared-prefix reuse, the *suffix* length,
// which is where reused bytes enter the scheduler's latency math. Prefill
// streams every layer once regardless of prompt length and then pays per
// prefilled token (projections, MLP, store_cache), so the Eq. 2 shape is the
// same affine fit the step model uses: T_prefill(n) ≈ fixed + perToken·n,
// with the quadratic attention term absorbed into the slope over the short
// prompt ranges one deployment serves. Exponentially-decayed least squares,
// same decay and readiness gate as StepCostModel; like it, safe for
// concurrent use (the scheduler observes from its loop goroutine while the
// adapt refitter and routers read predictions concurrently).
type PrefillCostModel struct {
	mu                  sync.Mutex
	n, st, stt, sy, sty float64
	samples             int64
}

// Observe folds one admission: tokens actually prefilled (suffix length
// under reuse) against the measured prefill duration.
func (m *PrefillCostModel) Observe(tokens int, d time.Duration) {
	if tokens <= 0 || d <= 0 {
		return
	}
	t, y := float64(tokens), d.Seconds()
	m.mu.Lock()
	m.n = m.n*stepCostDecay + 1
	m.st = m.st*stepCostDecay + t
	m.stt = m.stt*stepCostDecay + t*t
	m.sy = m.sy*stepCostDecay + y
	m.sty = m.sty*stepCostDecay + t*y
	m.samples++
	m.mu.Unlock()
}

// Ready reports whether the model has enough samples to predict.
func (m *PrefillCostModel) Ready() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ready()
}

func (m *PrefillCostModel) ready() bool { return m.samples >= stepCostMinSamples }

// Coefficients returns the fitted (fixed, perToken) parts in seconds, with
// the same degenerate-input and negative-slope fallbacks as the step model.
func (m *PrefillCostModel) Coefficients() (fixed, perToken float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.coefficients()
}

func (m *PrefillCostModel) coefficients() (fixed, perToken float64) {
	if m.n <= 0 {
		return 0, 0
	}
	det := m.n*m.stt - m.st*m.st
	mean := m.sy / m.n
	if det <= 1e-12*m.n*m.stt {
		return mean, 0
	}
	perToken = (m.n*m.sty - m.st*m.sy) / det
	fixed = (m.sy - perToken*m.st) / m.n
	if perToken < 0 {
		return mean, 0
	}
	if fixed < 0 {
		fixed = 0
	}
	return fixed, perToken
}

// Predict returns the expected prefill stall for the given token count
// (zero before Ready or for nothing to prefill).
func (m *PrefillCostModel) Predict(tokens int) time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ready() || tokens <= 0 {
		return 0
	}
	fixed, perToken := m.coefficients()
	return time.Duration((fixed + perToken*float64(tokens)) * float64(time.Second))
}
