// Package perfmodel implements LM-Offload's analytical performance model
// (§3.2 of the paper): the end-to-end latency decomposition of Eq. 1, the
// six-task decode model of Eq. 2, the quantization overhead models of
// Eqs. 3–7 and 12–24, the attention-offloading variants of Eqs. 8–9, the
// per-token I/O-traffic accounting of Table 1, and the three decision
// procedures listed at the end of §3.2.
//
// The model is purely analytical — no simulation — so the policy search can
// evaluate thousands of candidate strategies per second. The discrete-event
// simulator in internal/sim refines these estimates with resource contention;
// tests cross-check the two.
package perfmodel

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

// Strategy is one point in LM-Offload's decision space: where tensors live,
// where attention runs, and what gets quantized.
type Strategy struct {
	// AttnOnCPU offloads decode-phase attention computation (and thus the
	// whole KV cache) to the CPU, FlexGen's §2.2 step (2.1).
	AttnOnCPU bool
	// WeightsGPUPct (wg) is the fraction of weights resident in GPU memory.
	// The paper's wc = 1 - wg.
	WeightsGPUPct float64
	// CacheGPUPct (cg) is the fraction of KV cache resident in GPU memory.
	CacheGPUPct float64
	// ActGPUPct (hg) is the fraction of hidden activations on GPU.
	ActGPUPct float64
	// QuantWeights compresses CPU-resident weights with WeightBits codes.
	QuantWeights bool
	WeightBits   int
	// QuantKV compresses CPU-resident KV cache with KVBits codes.
	QuantKV bool
	KVBits  int
	// CompressGPUWeights stores the GPU-resident weight fraction in its
	// quantized form as well, trading per-use dequantization for capacity —
	// how LM-Offload fits wg=75% of OPT-30B into 40 GB (§5.2). Requires
	// QuantWeights.
	CompressGPUWeights bool
	// GroupSize is the quantization group size (elements per min/max pair).
	GroupSize int
}

// WC returns the paper's wc, the fraction of weights on CPU.
func (s Strategy) WC() float64 { return 1 - s.WeightsGPUPct }

// Validate reports out-of-range strategies.
func (s Strategy) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{{"wg", s.WeightsGPUPct}, {"cg", s.CacheGPUPct}, {"hg", s.ActGPUPct}} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("perfmodel: %s = %g outside [0, 1]", f.name, f.v)
		}
	}
	if s.QuantWeights && (s.WeightBits < 1 || s.WeightBits > 8) {
		return fmt.Errorf("perfmodel: weight bits %d outside [1, 8]", s.WeightBits)
	}
	if s.QuantKV && (s.KVBits < 1 || s.KVBits > 8) {
		return fmt.Errorf("perfmodel: KV bits %d outside [1, 8]", s.KVBits)
	}
	if (s.QuantWeights || s.QuantKV) && s.GroupSize <= 0 {
		return fmt.Errorf("perfmodel: group size %d must be positive", s.GroupSize)
	}
	if s.AttnOnCPU && s.CacheGPUPct > 0 {
		return fmt.Errorf("perfmodel: attention on CPU requires the KV cache on CPU (cg = %g)", s.CacheGPUPct)
	}
	if s.CompressGPUWeights && !s.QuantWeights {
		return fmt.Errorf("perfmodel: CompressGPUWeights requires QuantWeights")
	}
	return nil
}

// String renders the strategy in the paper's Table 3 vocabulary.
func (s Strategy) String() string {
	attn := "gpu-attn"
	if s.AttnOnCPU {
		attn = "cpu-attn"
	}
	q := "no-quant"
	switch {
	case s.QuantWeights && s.QuantKV:
		q = fmt.Sprintf("w%d+kv%d", s.WeightBits, s.KVBits)
	case s.QuantWeights:
		q = fmt.Sprintf("w%d", s.WeightBits)
	case s.QuantKV:
		q = fmt.Sprintf("kv%d", s.KVBits)
	}
	return fmt.Sprintf("%s wg=%.0f cg=%.0f hg=%.0f %s",
		attn, s.WeightsGPUPct*100, s.CacheGPUPct*100, s.ActGPUPct*100, q)
}

// quantRatio is the transfer-size multiplier of b-bit group quantization
// versus 16-bit storage: the packed codes plus the per-group min and scale
// (two float32 per group of groupSize 2-byte elements).
func quantRatio(bits, groupSize int) float64 {
	r := float64(bits) / 16
	if groupSize > 0 {
		r += 8.0 / (float64(groupSize) * 2)
	}
	return r
}

// weightQuantRatio is the weight transfer-size multiplier from quantization.
func (s Strategy) weightQuantRatio() float64 {
	if !s.QuantWeights {
		return 1
	}
	return quantRatio(s.WeightBits, s.GroupSize)
}

// kvQuantRatio is the KV transfer-size multiplier from quantization.
func (s Strategy) kvQuantRatio() float64 {
	if !s.QuantKV {
		return 1
	}
	return quantRatio(s.KVBits, s.GroupSize)
}

// ExecProfile captures how a concrete runtime executes the schedule: overlap
// quality, kernel efficiency, and threading efficiency. Baselines differ in
// these even when the Strategy is identical — this is where FlexGen's and
// ZeRO-Inference's measured behaviours are encoded.
type ExecProfile struct {
	Name string
	// OverlapBeta parameterizes the partial-overlap composition of the
	// per-layer step: T = max(resource times) + β · (sum of the rest).
	// β = 0 is the ideal Eq. 2 limit (perfect asynchrony), β = 1 full
	// serialization. Per-layer synchronization points (Algorithm 1 line 18)
	// and default-stream kernel serialization keep real runtimes near the
	// high end; LM-Offload's parallelism control lowers it.
	OverlapBeta float64
	// CacheDequantWeights reuses dequantized weights across the GPU batches
	// of a zig-zag block. FlexGen decompresses at use, once per batch;
	// LM-Offload caches the decompressed copy.
	CacheDequantWeights bool
	// QuantKernelScale multiplies the hardware QuantElemRate: 1 for
	// FlexGen's unfused kernel chain, larger for fused implementations
	// (DeepSpeed's 4-bit kernels).
	QuantKernelScale float64
	// FusedQuantKernels models a runtime whose matmuls consume packed
	// quantized operands directly (the QuantKernels exec policy): the
	// standalone weight and old-KV dequantization passes (Eqs. 16, 24)
	// collapse — their PostProcess memory round-trips vanish because no
	// float32 tensor is ever materialized — and only their Normalize
	// arithmetic survives, folded into the compute term where the fused
	// kernel performs it per cache-blocked tile. New-KV quantization
	// (Eq. 7) is unaffected: the store side still compresses fresh rows.
	FusedQuantKernels bool
	// LinkEff is the achieved fraction of the interconnect's per-direction
	// bandwidth (pageable vs pinned buffers, transfer granularity).
	LinkEff float64
	// CPUCompute scales cpu_flops for offloaded attention.
	CPUCompute float64
	// CPUCopy scales cpu_mem_bdw for CPU-side quantization post-processing.
	CPUCopy float64
	// StepOverhead is the fixed scheduling cost per (layer, token, GPU
	// batch): kernel launches, per-layer synchronization, small-transfer
	// setup. Negligible against FlexGen's hundreds-of-MB block transfers,
	// but significant for ZeRO-Inference's small per-batch KV gathers.
	StepOverhead float64
}

// Validate reports non-physical profiles.
func (p ExecProfile) Validate() error {
	if p.OverlapBeta < 0 || p.OverlapBeta > 1 {
		return fmt.Errorf("perfmodel: profile %q has overlap beta %g outside [0, 1]", p.Name, p.OverlapBeta)
	}
	if p.QuantKernelScale <= 0 || p.LinkEff <= 0 || p.LinkEff > 1 || p.CPUCompute <= 0 || p.CPUCompute > 1 || p.CPUCopy <= 0 || p.CPUCopy > 1 {
		return fmt.Errorf("perfmodel: profile %q has out-of-range factors: %+v", p.Name, p)
	}
	if p.StepOverhead < 0 {
		return fmt.Errorf("perfmodel: profile %q has negative step overhead", p.Name)
	}
	return nil
}

// FlexGenProfile models FlexGen's runtime: quantization in the default
// stream (serializing with transfers), per-batch weight decompression,
// unfused kernels, pageable-buffer PCIe efficiency, and PyTorch default
// threading (56 intra-op / 112 inter-op — the §4.1 contention regime).
func FlexGenProfile() ExecProfile {
	return ExecProfile{
		Name:                "flexgen",
		OverlapBeta:         0.95,
		CacheDequantWeights: false,
		QuantKernelScale:    1,
		LinkEff:             0.45,
		CPUCompute:          0.40,
		CPUCopy:             0.60,
		StepOverhead:        0.3e-3,
	}
}

// ZeROProfile models DeepSpeed ZeRO-Inference: fused dequantization kernels
// (fast), pinned contiguous transfer buffers (high link efficiency), but the
// same default threading and serial kernel scheduling.
func ZeROProfile() ExecProfile {
	return ExecProfile{
		Name:                "zero-inference",
		OverlapBeta:         0.95,
		CacheDequantWeights: false,
		QuantKernelScale:    20,
		LinkEff:             0.80,
		CPUCompute:          0.40,
		CPUCopy:             0.60,
		StepOverhead:        2.5e-3,
	}
}

// LMOffloadProfile models LM-Offload with parallelism control: full overlap,
// cached weight dequantization, and tuned threading (12 inter-op, 16
// intra-op — §5.4).
func LMOffloadProfile() ExecProfile {
	return ExecProfile{
		Name:                "lm-offload",
		OverlapBeta:         0.85,
		CacheDequantWeights: true,
		QuantKernelScale:    1,
		LinkEff:             0.55,
		CPUCompute:          0.60,
		CPUCopy:             0.88,
		StepOverhead:        0.2e-3,
	}
}

// LMOffloadNoParallelismControl is the §5.3 ablation: the quantization-aware
// policy runs under FlexGen's default threading and scheduling.
func LMOffloadNoParallelismControl() ExecProfile {
	p := FlexGenProfile()
	p.Name = "lm-offload-no-pc"
	p.CacheDequantWeights = true
	return p
}

// Estimator evaluates strategies for one (platform, model, workload) triple
// under one execution profile.
type Estimator struct {
	Plat  *hw.Platform
	Mod   model.Config
	Work  trace.Workload
	Strat Strategy
	Exec  ExecProfile
}

// New constructs an estimator, validating all inputs.
func New(p *hw.Platform, m model.Config, w trace.Workload, s Strategy, exec ExecProfile) (*Estimator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if err := exec.Validate(); err != nil {
		return nil, err
	}
	return &Estimator{Plat: p, Mod: m, Work: w, Strat: s, Exec: exec}, nil
}

// With returns a copy of e with the strategy replaced, for cheap what-if
// evaluation during policy search.
func (e *Estimator) With(s Strategy) *Estimator {
	cp := *e
	cp.Strat = s
	return &cp
}

// TaskTimes is the per-layer, per-token cost of the six decode tasks of
// Algorithm 1, in seconds, including (de)quantization surcharges
// (Eqs. 4, 6, 7).
type TaskTimes struct {
	LoadWeight      float64
	LoadCache       float64
	LoadActivation  float64
	StoreCache      float64
	StoreActivation float64
	Compute         float64
}

// Max returns the Eq. 2 composition: with fully asynchronous task execution,
// the step time is the slowest task.
func (t TaskTimes) Max() float64 {
	m := t.LoadWeight
	for _, v := range []float64{t.LoadCache, t.LoadActivation, t.StoreCache, t.StoreActivation, t.Compute} {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the fully serialized composition (asynchronous execution
// disabled).
func (t TaskTimes) Sum() float64 {
	return t.LoadWeight + t.LoadCache + t.LoadActivation + t.StoreCache + t.StoreActivation + t.Compute
}

// linkBW returns the effective per-direction interconnect bandwidth.
func (e *Estimator) linkBW() float64 {
	return e.Plat.Link.BandwidthPerDir * e.Exec.LinkEff
}

// gpu returns the platform's first GPU (the single-GPU model; the pipeline
// package composes estimators per stage for multi-GPU).
func (e *Estimator) gpu() hw.GPU { return e.Plat.GPU0() }

// --- tensor sizes (bytes, per layer, whole block) -------------------------

// layerWeightBytes is one layer's weights in deployment precision.
func (e *Estimator) layerWeightBytes() float64 {
	return float64(e.Mod.LayerWeightBytes())
}

// oldKVBytesAvg is Eq. 18's per-token average: 2·(s+n/2)·h1·bls elements.
func (e *Estimator) oldKVBytesAvg() float64 {
	s, n := float64(e.Work.PromptLen), float64(e.Work.GenLen)
	return 2 * (s + n/2) * float64(e.Mod.Hidden) * float64(e.Work.BlockSize()) * float64(e.Mod.BytesPerElem)
}

// oldKVBytesAt is the instantaneous old-cache size before generating token
// t (0-based): prompt plus t generated tokens.
func (e *Estimator) oldKVBytesAt(t int) float64 {
	s := float64(e.Work.PromptLen + t)
	return 2 * s * float64(e.Mod.Hidden) * float64(e.Work.BlockSize()) * float64(e.Mod.BytesPerElem)
}

// newKVBytes is Eq. 19 per token: 2·h1·bls elements.
func (e *Estimator) newKVBytes() float64 {
	return 2 * float64(e.Mod.Hidden) * float64(e.Work.BlockSize()) * float64(e.Mod.BytesPerElem)
}

// prefillKVBytes is Eq. 17: 2·(s+1)·h1·bls elements.
func (e *Estimator) prefillKVBytes() float64 {
	return 2 * float64(e.Work.PromptLen+1) * float64(e.Mod.Hidden) * float64(e.Work.BlockSize()) * float64(e.Mod.BytesPerElem)
}

// activationBytes is the per-layer hidden state for the block.
func (e *Estimator) activationBytes() float64 {
	return float64(e.Mod.ActivationBytes(e.Work))
}
