package perfmodel

// Per-token latency curve. Eq. 18 models the old KV cache with its average
// size; these helpers expose the actual per-token trajectory — the KV cache
// grows linearly with generated tokens (Fig. 1), so the step time climbs
// across the generation unless attention is offloaded.

// PartsAt computes the per-layer resource decomposition for the decode step
// that generates token t (0-based): the old cache holds the prompt plus t
// tokens.
func (e *Estimator) PartsAt(t int) StepParts {
	p := e.Parts()
	if e.Strat.AttnOnCPU {
		// Attention on CPU: the link does not see the KV cache, but the CPU
		// attention work still grows with the sequence.
		seq := e.Work.PromptLen + t
		attnFlops := e.Mod.AttnFlopsDecode(e.Work, seq)
		p.CPUCompute = attnFlops / (e.Plat.CPU.Flops * e.Exec.CPUCompute)
		return p
	}
	bw := e.linkBW()
	cpuFrac := 1 - e.Strat.CacheGPUPct
	avgUp := e.oldKVBytesAvg() * cpuFrac * e.Strat.kvQuantRatio() / bw
	nowUp := e.oldKVBytesAt(t) * cpuFrac * e.Strat.kvQuantRatio() / bw
	p.LinkUp += nowUp - avgUp

	// The dequantization of the old cache scales the same way.
	if e.Strat.QuantKV {
		scale := e.oldKVBytesAt(t) / e.oldKVBytesAvg()
		avgDq := e.DequanOldCache().Total()
		p.GPUQuant += avgDq*scale - avgDq
	}
	seq := e.Work.PromptLen + t
	attnFlops := e.Mod.AttnFlopsDecode(e.Work, seq)
	avgFlops := e.Mod.AttnFlopsDecode(e.Work, e.Work.PromptLen+e.Work.GenLen/2)
	g := e.gpu()
	p.GPUCompute += (attnFlops - avgFlops) / g.Flops
	return p
}

// TGenAt composes the per-layer step time for the token-t decode step.
func (e *Estimator) TGenAt(t int) float64 {
	p := e.PartsAt(t)
	gpu := p.GPUCompute + p.GPUQuant
	m := max4(p.LinkUp, p.LinkDown, p.CPUCompute, gpu)
	sum := p.LinkUp + p.LinkDown + p.CPUCompute + gpu
	return m + e.Exec.OverlapBeta*(sum-m) + e.stepOverhead()
}

// LatencyCurve returns the per-layer step time for every decode token —
// the sawtooth-free growth curve the averaged model summarizes.
func (e *Estimator) LatencyCurve() []float64 {
	out := make([]float64, e.Work.GenLen)
	for t := range out {
		out[t] = e.TGenAt(t)
	}
	return out
}
