package perfmodel

import (
	"math"
	"sync"
	"testing"
)

func TestQError(t *testing.T) {
	cases := []struct{ pred, act, want float64 }{
		{10, 10, 1},
		{20, 10, 2},
		{10, 20, 2}, // symmetric: under-prediction scores like over-prediction
		{0, 10, 0},
		{10, 0, 0},
		{-1, 10, 0},
	}
	for _, c := range cases {
		if got := QError(c.pred, c.act); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("QError(%v, %v) = %v, want %v", c.pred, c.act, got, c.want)
		}
	}
}

func TestEstAccuracyQuantiles(t *testing.T) {
	var a EstAccuracy
	if a.Median() != 0 || a.P95() != 0 || a.Max() != 0 || a.Count() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
	// q-errors 1..10 via pred=k, act=1.
	for k := 1; k <= 10; k++ {
		a.Add(float64(k), 1)
	}
	a.Add(0, 5) // dropped
	if a.Count() != 10 {
		t.Fatalf("count %d, want 10", a.Count())
	}
	if got := a.Median(); got != 6 { // nearest-rank: sorted[5]
		t.Fatalf("median %v, want 6", got)
	}
	if got := a.Max(); got != 10 {
		t.Fatalf("max %v, want 10", got)
	}
	if got := a.P95(); got != 10 {
		t.Fatalf("p95 %v, want 10", got)
	}
}

func TestEstCollectorConcurrent(t *testing.T) {
	c := NewEstCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.ObserveEstimate(EstTPOT, 2, 1)
				c.ObserveEstimate(EstPeakArena, 1, 1)
			}
		}()
	}
	wg.Wait()
	kinds := c.Kinds()
	if len(kinds) != 2 || kinds[0] != EstPeakArena || kinds[1] != EstTPOT {
		t.Fatalf("kinds %v", kinds)
	}
	tpot := c.Accuracy(EstTPOT)
	if tpot.Count() != 800 || tpot.Median() != 2 {
		t.Fatalf("tpot count=%d median=%v", tpot.Count(), tpot.Median())
	}
	arena := c.Accuracy(EstPeakArena)
	if arena.Count() != 800 || arena.Max() != 1 {
		t.Fatalf("arena count=%d max=%v", arena.Count(), arena.Max())
	}
	// Snapshot independence: mutating the snapshot must not affect the
	// collector.
	snap := c.Accuracy(EstTPOT)
	snap.Add(100, 1)
	if c.Accuracy(EstTPOT).Count() != 800 {
		t.Fatal("Accuracy snapshot aliases collector state")
	}
	if c.Accuracy("never").Count() != 0 {
		t.Fatal("unknown kind must be empty")
	}
}
