package perfmodel

import (
	"math"
	"testing"
	"time"
)

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return d / m
}

func TestChunkPrefillPartsRecoversMonolithic(t *testing.T) {
	// A single chunk covering the whole prompt IS the monolithic prefill:
	// the parts must match TPrefill's inputs exactly.
	cases := []Strategy{
		{WeightsGPUPct: 0.55},
		{AttnOnCPU: true, WeightsGPUPct: 0.55},
		{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64},
	}
	for _, strat := range cases {
		e := fixture(t, strat, FlexGenProfile())
		s := e.Work.PromptLen
		lw, comp, kv := e.ChunkPrefillParts(0, s)
		wantComp, wantKV := e.PrefillParts()
		if relDiff(lw, e.WeightUpTime()) > 1e-12 {
			t.Errorf("%v: loadWeight %.9g != WeightUpTime %.9g", strat, lw, e.WeightUpTime())
		}
		if relDiff(comp, wantComp) > 1e-9 {
			t.Errorf("%v: compute %.9g != monolithic %.9g", strat, comp, wantComp)
		}
		if relDiff(kv, wantKV) > 1e-9 {
			t.Errorf("%v: kvDown %.9g != monolithic %.9g", strat, kv, wantKV)
		}
	}
}

func TestChunkedPrefillTasksInvariants(t *testing.T) {
	e := fixture(t, Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}, FlexGenProfile())
	s := e.Work.PromptLen
	l := float64(e.Mod.Layers)
	mono := e.ChunkedPrefillTasks(0)
	for _, chunk := range []int{1, 3, 7, 16, s, s + 100} {
		tt := e.ChunkedPrefillTasks(chunk)
		chunks := e.ChunkedPrefillChunks(chunk)
		wantChunks := (s + chunk - 1) / chunk
		if chunk >= s || chunk <= 0 {
			wantChunks = 1
		}
		if chunks != wantChunks {
			t.Errorf("chunk=%d: chunks=%d want %d", chunk, chunks, wantChunks)
		}
		// KV offload and weight streaming are row/chunk proportional.
		if relDiff(tt.StoreCache, mono.StoreCache) > 1e-9 {
			t.Errorf("chunk=%d: StoreCache %.9g != monolithic %.9g (row-proportional)", chunk, tt.StoreCache, mono.StoreCache)
		}
		wantLW := e.WeightUpTime() * l * float64(chunks)
		if relDiff(tt.LoadWeight, wantLW) > 1e-9 {
			t.Errorf("chunk=%d: LoadWeight %.9g want %.9g", chunk, tt.LoadWeight, wantLW)
		}
		// Chunked causal attention never recomputes rows, so total compute
		// can only shrink as chunks get smaller (the last chunk attends over
		// the full prompt; earlier chunks attend over less).
		if tt.Compute > mono.Compute*(1+1e-12) {
			t.Errorf("chunk=%d: Compute %.9g exceeds monolithic %.9g", chunk, tt.Compute, mono.Compute)
		}
		if chunk < s && tt.Compute >= mono.Compute {
			t.Errorf("chunk=%d: Compute %.9g should be strictly below monolithic %.9g", chunk, tt.Compute, mono.Compute)
		}
		// Ideal-overlap makespan is bounded by the busiest kind below and the
		// serial sum above.
		mk := e.TPrefillChunked(chunk)
		maxKind := math.Max(tt.Compute, math.Max(tt.LoadWeight, tt.StoreCache))
		if mk < maxKind-1e-9 || mk > tt.Sum()+1e-9 {
			t.Errorf("chunk=%d: makespan %.9g outside [%.9g, %.9g]", chunk, mk, maxKind, tt.Sum())
		}
	}
}

func TestPredictChunked(t *testing.T) {
	m := &PrefillCostModel{}
	if m.PredictChunked(100, 10) != 0 {
		t.Fatal("prediction before ready should be zero")
	}
	// Synthesize a perfectly linear cost: 10ms fixed + 1ms/token.
	for _, n := range []int{10, 20, 40, 80, 160, 320, 640, 1280, 50, 200} {
		m.Observe(n, 10*time.Millisecond+time.Duration(n)*time.Millisecond)
	}
	if !m.Ready() {
		t.Fatal("model should be ready")
	}
	mono := m.Predict(100)
	if d := mono - 110*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("Predict(100) = %v, want ~110ms", mono)
	}
	// 100 tokens in chunks of 25 → 4 chunks → 4x the fixed cost.
	got := m.PredictChunked(100, 25)
	if d := got - 140*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("PredictChunked(100, 25) = %v, want ~140ms", got)
	}
	if got <= mono {
		t.Fatalf("chunked prediction %v should exceed monolithic %v (extra fixed costs)", got, mono)
	}
	// Degenerate chunk sizes collapse to the monolithic prediction.
	if m.PredictChunked(100, 0) != mono {
		t.Error("chunk<=0 should fall back to Predict")
	}
	if m.PredictChunked(100, 100) != mono {
		t.Error("chunk>=tokens should fall back to Predict")
	}
	if m.PredictChunked(0, 25) != 0 {
		t.Error("zero tokens should predict zero")
	}
}

func TestPredictTPOTWithChunk(t *testing.T) {
	m := &StepCostModel{}
	if m.PredictTPOTWithChunk(2, time.Second) != 0 {
		t.Fatal("prediction before ready should be zero")
	}
	for _, occ := range []int{1, 2, 3, 4, 1, 2, 3, 4} {
		m.Observe(occ, 10*time.Millisecond+time.Duration(occ)*5*time.Millisecond)
	}
	base := m.PredictTPOT(2)
	if base <= 0 {
		t.Fatal("model should be ready")
	}
	if got := m.PredictTPOTWithChunk(2, 7*time.Millisecond); got != base+7*time.Millisecond {
		t.Errorf("PredictTPOTWithChunk = %v, want %v", got, base+7*time.Millisecond)
	}
	if got := m.PredictTPOTWithChunk(2, -time.Second); got != base {
		t.Errorf("negative chunk cost should clamp to the bare step, got %v want %v", got, base)
	}
}

func TestChunkStateBytes(t *testing.T) {
	a := AdmissionModel{HiddenDim: 64, BytesPerElem: 4}
	// 2 (K+V) * layers * tokens * hidden * bytes
	if got, want := a.ChunkStateBytes(100, 4), int64(2*4*100*64*4); got != want {
		t.Errorf("ChunkStateBytes = %d, want %d", got, want)
	}
	if a.ChunkStateBytes(0, 4) != 0 || a.ChunkStateBytes(100, 0) != 0 {
		t.Error("zero tokens or layers should cost zero")
	}
	if a.ChunkStateBytes(-5, 4) != 0 || a.ChunkStateBytes(100, -1) != 0 {
		t.Error("negative inputs should clamp to zero")
	}
	big := AdmissionModel{HiddenDim: math.MaxInt32, BytesPerElem: math.MaxInt32}
	if got := big.ChunkStateBytes(math.MaxInt32, math.MaxInt32); got != math.MaxInt64 {
		t.Errorf("overflow should saturate, got %d", got)
	}
}
