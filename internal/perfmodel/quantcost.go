package perfmodel

// Quantization overhead models (Eqs. 12–24). All returned times are in
// seconds. Phase structure follows the paper exactly:
//
//   - the min/max scan costs elements / frequency (Eqs. 13, 21);
//   - normalization (Eq. 10 / Eq. 11) runs through the unfused kernel chain
//     at the device's QuantElemRate (the paper's cpu_flops/gpu_flops with the
//     3-FLOPs-per-element numerator folded into the calibrated rate), scaled
//     by the runtime's QuantKernelScale (Eqs. 14, 22);
//   - post-processing is a memory copy costed in bytes / bandwidth
//     (Eqs. 15, 23);
//   - dequantization skips the min/max scan (Eqs. 16, 24).

// QuantCost decomposes one (de)quantization pass.
type QuantCost struct {
	MinMax      float64
	Normalize   float64
	PostProcess float64
}

// Total returns the summed phase costs.
func (q QuantCost) Total() float64 { return q.MinMax + q.Normalize + q.PostProcess }

// gpuQuantRate is the effective element rate of (de)quantization kernels on
// the GPU under this runtime.
func (e *Estimator) gpuQuantRate() float64 {
	return e.gpu().QuantElemRate * e.Exec.QuantKernelScale
}

// cpuQuantRate is the CPU-side equivalent.
func (e *Estimator) cpuQuantRate() float64 {
	return e.Plat.CPU.QuantElemRate * e.Exec.QuantKernelScale
}

// weightElemsOnCPU returns num_weights · wc for one layer (Eq. 12's operand).
func (e *Estimator) weightElemsOnCPU() float64 {
	return float64(e.Mod.WeightsPerLayer()) * e.Strat.WC()
}

// weightElemsCompressed returns the per-layer weight elements that must be
// dequantized before use each step: the transferred CPU-resident fraction
// (Eq. 16) plus, when the GPU-resident fraction is stored compressed, that
// fraction as well.
func (e *Estimator) weightElemsCompressed() float64 {
	frac := e.Strat.WC()
	if e.Strat.CompressGPUWeights {
		frac += e.Strat.WeightsGPUPct
	}
	return float64(e.Mod.WeightsPerLayer()) * frac
}

// QuanPfWgt models Eq. 12: the one-time CPU-side quantization of one layer's
// CPU-resident weights, folded into T_init by Eq. 3.
func (e *Estimator) QuanPfWgt() QuantCost {
	if !e.Strat.QuantWeights {
		return QuantCost{}
	}
	elems := e.weightElemsOnCPU()
	bytes := elems * float64(e.Mod.BytesPerElem)
	cpu := e.Plat.CPU
	return QuantCost{
		MinMax:      elems / cpu.Freq,                            // Eq. 13
		Normalize:   elems / e.cpuQuantRate(),                    // Eq. 14
		PostProcess: bytes / (cpu.MemBandwidth * e.Exec.CPUCopy), // Eq. 15
	}
}

// DequanWgt models Eq. 16 for one decompression pass: the GPU-side
// dequantization of one layer's offloaded weights. Without dequant caching
// the pass repeats once per GPU batch in the block (FlexGen decompresses at
// use); DequanWgtPerToken applies that multiplier.
func (e *Estimator) DequanWgt() QuantCost {
	if !e.Strat.QuantWeights || e.Exec.FusedQuantKernels {
		// Fused kernels never run a standalone weight dequantization pass;
		// the surviving arithmetic is accounted by fusedDequanWork.
		return QuantCost{}
	}
	elems := e.weightElemsCompressed()
	bytes := elems * float64(e.Mod.BytesPerElem)
	g := e.gpu()
	return QuantCost{
		Normalize:   elems / e.gpuQuantRate(),
		PostProcess: bytes / g.MemBandwidth,
	}
}

// DequanWgtPerToken is the weight dequantization time charged to one decode
// step of one layer, accounting for per-batch decompression when the runtime
// does not cache the decompressed weights.
func (e *Estimator) DequanWgtPerToken() float64 {
	c := e.DequanWgt().Total()
	if c == 0 || e.Exec.CacheDequantWeights {
		return c
	}
	return c * float64(e.Work.NumBatches)
}

// QuanPfCache models Eq. 20: quantizing the prefill-populated KV cache of
// one layer on the GPU, added to T_pf by Eq. 5.
func (e *Estimator) QuanPfCache() QuantCost {
	if !e.Strat.QuantKV || e.Strat.AttnOnCPU {
		// With attention offloading the KV cache never crosses the link, so
		// it is never quantized (§3.1 Observation 1, third reason).
		return QuantCost{}
	}
	bytes := e.prefillKVBytes() * (1 - e.Strat.CacheGPUPct)
	elems := bytes / float64(e.Mod.BytesPerElem)
	g := e.gpu()
	return QuantCost{
		MinMax:      elems / g.Freq,           // Eq. 21
		Normalize:   elems / e.gpuQuantRate(), // Eq. 22
		PostProcess: bytes / g.MemBandwidth,   // Eq. 23
	}
}

// QuanNewCache models the Eq. 7 surcharge: quantizing the freshly generated
// KV rows of one layer before storing them to CPU memory.
func (e *Estimator) QuanNewCache() QuantCost {
	if !e.Strat.QuantKV || e.Strat.AttnOnCPU {
		return QuantCost{}
	}
	bytes := e.newKVBytes() * (1 - e.Strat.CacheGPUPct)
	elems := bytes / float64(e.Mod.BytesPerElem)
	g := e.gpu()
	return QuantCost{
		MinMax:      elems / g.Freq,
		Normalize:   elems / e.gpuQuantRate(),
		PostProcess: bytes / g.MemBandwidth,
	}
}

// DequanOldCache models Eq. 24: dequantizing the uploaded old KV cache of
// one layer (per-token average size, Eq. 18), added to load_cache by Eq. 6.
func (e *Estimator) DequanOldCache() QuantCost {
	if !e.Strat.QuantKV || e.Strat.AttnOnCPU || e.Exec.FusedQuantKernels {
		// Under fused kernels the uploaded KV history stays packed and is
		// dequantized per tile inside attention (see fusedDequanWork).
		return QuantCost{}
	}
	bytes := e.oldKVBytesAvg() * (1 - e.Strat.CacheGPUPct)
	elems := bytes / float64(e.Mod.BytesPerElem)
	g := e.gpu()
	return QuantCost{
		Normalize:   elems / e.gpuQuantRate(),
		PostProcess: bytes / g.MemBandwidth,
	}
}

// fusedDequanWork is the per-layer, per-token dequantization arithmetic that
// the fused quantized-domain kernels absorb into the compute term when
// Exec.FusedQuantKernels is set: the Normalize phase (Eqs. 14/22 work) of the
// collapsed weight and old-KV passes, now performed per cache-blocked tile
// inside the matmul. The PostProcess memory round-trips of Eqs. 16/24 vanish
// entirely — no float32 tensor is materialized. Weight work repeats per GPU
// batch unless the runtime caches across batches (the same multiplier
// DequanWgtPerToken applies to the unfused pass).
func (e *Estimator) fusedDequanWork() float64 {
	if !e.Exec.FusedQuantKernels {
		return 0
	}
	var w float64
	if e.Strat.QuantWeights {
		wgt := e.weightElemsCompressed() / e.gpuQuantRate()
		if !e.Exec.CacheDequantWeights {
			wgt *= float64(e.Work.NumBatches)
		}
		w += wgt
	}
	if e.Strat.QuantKV && !e.Strat.AttnOnCPU {
		elems := e.oldKVBytesAvg() * (1 - e.Strat.CacheGPUPct) / float64(e.Mod.BytesPerElem)
		w += elems / e.gpuQuantRate()
	}
	return w
}

// gpuQuantWorkPerLayerToken is the total GPU-side (de)quantization time one
// decode step spends in one layer: weight dequantization (with the per-batch
// multiplier), old-KV dequantization, and new-KV quantization.
func (e *Estimator) gpuQuantWorkPerLayerToken() float64 {
	return e.DequanWgtPerToken() + e.DequanOldCache().Total() + e.QuanNewCache().Total()
}

// QuantBreakdown aggregates the quantization and dequantization time per
// generated token across all layers — the Figure 4 decomposition.
type QuantBreakdown struct {
	// QuantPerToken is time spent compressing per token (new KV cache).
	QuantPerToken float64
	// DequantPerToken is time spent decompressing per token (weights and old
	// KV cache).
	DequantPerToken float64
	// OneTimeQuant is the amortizable cost: weight quantization at load time
	// plus prefill KV quantization.
	OneTimeQuant float64
	// OtherPerToken is the remaining per-token step time (transfers,
	// attention, MLP).
	OtherPerToken float64
}

// Breakdown computes the per-token time decomposition across all l layers.
func (e *Estimator) Breakdown() QuantBreakdown {
	l := float64(e.Mod.Layers)
	b := QuantBreakdown{
		QuantPerToken:   e.QuanNewCache().Total() * l,
		DequantPerToken: (e.DequanWgtPerToken() + e.DequanOldCache().Total()) * l,
		OneTimeQuant:    e.QuanPfWgt().Total()*l + e.QuanPfCache().Total()*l,
	}
	step := e.TGen() * l
	other := step - b.QuantPerToken - b.DequantPerToken
	if other < 0 {
		other = 0
	}
	b.OtherPerToken = other
	return b
}
