package perfmodel

import (
	"sort"
	"sync"
)

// Estimator kinds reported through EstObserver. The scheduler emits tpot and
// prefill observations inline (prediction captured immediately before the
// measured operation); peak_arena and drain are sampled by the harness
// against engine counters and wall-clock drain time.
const (
	// EstPeakArena scores AdmissionModel's peak-arena-bytes estimate against
	// the arena high-water mark the run actually reached.
	EstPeakArena = "peak_arena"
	// EstTPOT scores StepCostModel.PredictTPOT against measured decode-step
	// latency at the same batch size.
	EstTPOT = "tpot"
	// EstDrain scores StepCostModel.PredictDrain against the wall-clock time
	// the queue+batch actually took to drain.
	EstDrain = "drain"
	// EstPrefill scores the fitted PrefillCostModel against measured
	// admission (prefill) latency for the same suffix length.
	EstPrefill = "prefill"
)

// EstObserver receives (predicted, actual) estimator pairs as they happen.
// Implementations must be safe for concurrent use; the scheduler calls it
// from its loop goroutine while harnesses may call it from samplers.
type EstObserver interface {
	ObserveEstimate(kind string, predicted, actual float64)
}

// QError is the symmetric relative error used throughout the estimator grid:
// max(predicted/actual, actual/predicted), so 1.0 is exact and both over-
// and under-prediction score alike. Non-positive inputs cannot be ranked and
// return +Inf-free sentinel 0 so callers can drop them.
func QError(predicted, actual float64) float64 {
	if predicted <= 0 || actual <= 0 {
		return 0
	}
	if predicted >= actual {
		return predicted / actual
	}
	return actual / predicted
}

// EstAccuracy accumulates q-errors for one estimator kind and reports order
// statistics over everything seen so far.
type EstAccuracy struct {
	qerrs []float64
}

// Add records one (predicted, actual) pair; unrankable pairs (either side
// non-positive) are dropped.
func (a *EstAccuracy) Add(predicted, actual float64) {
	if q := QError(predicted, actual); q > 0 {
		a.qerrs = append(a.qerrs, q)
	}
}

// Count returns how many rankable pairs have been recorded.
func (a EstAccuracy) Count() int { return len(a.qerrs) }

// quantile returns the q-quantile (nearest-rank on a sorted copy), or 0 when
// empty.
func (a EstAccuracy) quantile(q float64) float64 {
	if len(a.qerrs) == 0 {
		return 0
	}
	s := append([]float64(nil), a.qerrs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Median returns the median q-error (0 when empty).
func (a EstAccuracy) Median() float64 { return a.quantile(0.5) }

// P95 returns the 95th-percentile q-error (0 when empty).
func (a EstAccuracy) P95() float64 { return a.quantile(0.95) }

// Max returns the worst q-error seen (0 when empty).
func (a EstAccuracy) Max() float64 {
	m := 0.0
	for _, q := range a.qerrs {
		if q > m {
			m = q
		}
	}
	return m
}

// DefaultEstWindow is the per-kind bounded window of recent observations the
// collector keeps alongside the lifetime aggregates. Sized so drift detection
// reacts within a few dozen decode steps while still median-smoothing fault
// noise.
const DefaultEstWindow = 64

// estSample is one recent (predicted, actual) pair with its q-error.
type estSample struct {
	pred, act, qerr float64
}

// estWindow is a fixed-capacity ring of the most recent rankable samples for
// one estimator kind.
type estWindow struct {
	ring []estSample
	next int
	full bool
}

func (w *estWindow) add(s estSample, capacity int) {
	if len(w.ring) != capacity {
		// Capacity changed (or first sample): restart the ring. Windows are
		// short-lived views, so discarding on resize is fine.
		w.ring = make([]estSample, capacity)
		w.next, w.full = 0, false
	}
	w.ring[w.next] = s
	w.next++
	if w.next == len(w.ring) {
		w.next, w.full = 0, true
	}
}

func (w *estWindow) count() int {
	if w.full {
		return len(w.ring)
	}
	return w.next
}

// EstWindowStats summarizes the recent-observation window of one estimator
// kind — the drift detector's view. QErrMedian is the windowed median
// symmetric error; ActualMedian and PredictedMedian are the windowed medians
// of the raw pair sides (ActualMedian of the TPOT kind is the live measured
// step latency the canary compares).
type EstWindowStats struct {
	Count           int
	QErrMedian      float64
	ActualMedian    float64
	PredictedMedian float64
}

// EstCollector is a thread-safe EstObserver that buckets observations by
// estimator kind — the accumulator behind each grid cell. Each kind keeps
// two views: a lifetime EstAccuracy (the /stats and grid aggregates) and a
// bounded window of the most recent samples that drift detection reads and
// can reset, so a detector sees recent q-errors rather than a lifetime
// average that dilutes regime changes.
type EstCollector struct {
	mu      sync.Mutex
	kinds   map[string]*EstAccuracy
	windows map[string]*estWindow
	winCap  int
}

// NewEstCollector returns an empty collector with DefaultEstWindow recent
// samples retained per kind.
func NewEstCollector() *EstCollector {
	return &EstCollector{
		kinds:   map[string]*EstAccuracy{},
		windows: map[string]*estWindow{},
		winCap:  DefaultEstWindow,
	}
}

// SetWindowSize resizes the per-kind recent-sample window (minimum 1).
// Resizing restarts the windows; lifetime aggregates are unaffected.
func (c *EstCollector) SetWindowSize(n int) {
	if n < 1 {
		n = 1
	}
	c.mu.Lock()
	c.winCap = n
	c.windows = map[string]*estWindow{}
	c.mu.Unlock()
}

// ObserveEstimate implements EstObserver.
func (c *EstCollector) ObserveEstimate(kind string, predicted, actual float64) {
	q := QError(predicted, actual)
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.kinds[kind]
	if acc == nil {
		acc = &EstAccuracy{}
		c.kinds[kind] = acc
	}
	acc.Add(predicted, actual)
	if q <= 0 {
		return // unrankable pairs are dropped from both views
	}
	w := c.windows[kind]
	if w == nil {
		w = &estWindow{}
		c.windows[kind] = w
	}
	w.add(estSample{pred: predicted, act: actual, qerr: q}, c.winCap)
}

// WindowAccuracy returns an EstAccuracy over only the recent-sample window
// for the kind (empty if never observed or reset since).
func (c *EstCollector) WindowAccuracy(kind string) EstAccuracy {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.windows[kind]
	if w == nil {
		return EstAccuracy{}
	}
	acc := EstAccuracy{qerrs: make([]float64, 0, w.count())}
	for i := 0; i < w.count(); i++ {
		acc.qerrs = append(acc.qerrs, w.ring[i].qerr)
	}
	return acc
}

// WindowStats returns the windowed medians for the kind (zero-valued if the
// window is empty).
func (c *EstCollector) WindowStats(kind string) EstWindowStats {
	c.mu.Lock()
	w := c.windows[kind]
	var qs, as, ps []float64
	if w != nil {
		n := w.count()
		qs = make([]float64, 0, n)
		as = make([]float64, 0, n)
		ps = make([]float64, 0, n)
		for i := 0; i < n; i++ {
			qs = append(qs, w.ring[i].qerr)
			as = append(as, w.ring[i].act)
			ps = append(ps, w.ring[i].pred)
		}
	}
	c.mu.Unlock()
	return EstWindowStats{
		Count:           len(qs),
		QErrMedian:      medianOf(qs),
		ActualMedian:    medianOf(as),
		PredictedMedian: medianOf(ps),
	}
}

// ResetWindow clears the recent-sample window for one kind, leaving the
// lifetime aggregates intact — the canary calls this at a swap boundary so
// post-swap medians only cover post-swap steps.
func (c *EstCollector) ResetWindow(kind string) {
	c.mu.Lock()
	delete(c.windows, kind)
	c.mu.Unlock()
}

// ResetWindows clears every kind's recent-sample window.
func (c *EstCollector) ResetWindows() {
	c.mu.Lock()
	c.windows = map[string]*estWindow{}
	c.mu.Unlock()
}

// medianOf returns the median of vals (0 when empty) without mutating them.
func medianOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// Kinds returns the estimator kinds observed so far, sorted.
func (c *EstCollector) Kinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.kinds))
	for k := range c.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Accuracy returns a snapshot of the accumulated q-errors for one kind
// (empty accumulator if the kind was never observed).
func (c *EstCollector) Accuracy(kind string) EstAccuracy {
	c.mu.Lock()
	defer c.mu.Unlock()
	if acc := c.kinds[kind]; acc != nil {
		return EstAccuracy{qerrs: append([]float64(nil), acc.qerrs...)}
	}
	return EstAccuracy{}
}
