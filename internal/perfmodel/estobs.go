package perfmodel

import (
	"sort"
	"sync"
)

// Estimator kinds reported through EstObserver. The scheduler emits tpot and
// prefill observations inline (prediction captured immediately before the
// measured operation); peak_arena and drain are sampled by the harness
// against engine counters and wall-clock drain time.
const (
	// EstPeakArena scores AdmissionModel's peak-arena-bytes estimate against
	// the arena high-water mark the run actually reached.
	EstPeakArena = "peak_arena"
	// EstTPOT scores StepCostModel.PredictTPOT against measured decode-step
	// latency at the same batch size.
	EstTPOT = "tpot"
	// EstDrain scores StepCostModel.PredictDrain against the wall-clock time
	// the queue+batch actually took to drain.
	EstDrain = "drain"
	// EstPrefill scores the fitted PrefillCostModel against measured
	// admission (prefill) latency for the same suffix length.
	EstPrefill = "prefill"
)

// EstObserver receives (predicted, actual) estimator pairs as they happen.
// Implementations must be safe for concurrent use; the scheduler calls it
// from its loop goroutine while harnesses may call it from samplers.
type EstObserver interface {
	ObserveEstimate(kind string, predicted, actual float64)
}

// QError is the symmetric relative error used throughout the estimator grid:
// max(predicted/actual, actual/predicted), so 1.0 is exact and both over-
// and under-prediction score alike. Non-positive inputs cannot be ranked and
// return +Inf-free sentinel 0 so callers can drop them.
func QError(predicted, actual float64) float64 {
	if predicted <= 0 || actual <= 0 {
		return 0
	}
	if predicted >= actual {
		return predicted / actual
	}
	return actual / predicted
}

// EstAccuracy accumulates q-errors for one estimator kind and reports order
// statistics over everything seen so far.
type EstAccuracy struct {
	qerrs []float64
}

// Add records one (predicted, actual) pair; unrankable pairs (either side
// non-positive) are dropped.
func (a *EstAccuracy) Add(predicted, actual float64) {
	if q := QError(predicted, actual); q > 0 {
		a.qerrs = append(a.qerrs, q)
	}
}

// Count returns how many rankable pairs have been recorded.
func (a EstAccuracy) Count() int { return len(a.qerrs) }

// quantile returns the q-quantile (nearest-rank on a sorted copy), or 0 when
// empty.
func (a EstAccuracy) quantile(q float64) float64 {
	if len(a.qerrs) == 0 {
		return 0
	}
	s := append([]float64(nil), a.qerrs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Median returns the median q-error (0 when empty).
func (a EstAccuracy) Median() float64 { return a.quantile(0.5) }

// P95 returns the 95th-percentile q-error (0 when empty).
func (a EstAccuracy) P95() float64 { return a.quantile(0.95) }

// Max returns the worst q-error seen (0 when empty).
func (a EstAccuracy) Max() float64 {
	m := 0.0
	for _, q := range a.qerrs {
		if q > m {
			m = q
		}
	}
	return m
}

// EstCollector is a thread-safe EstObserver that buckets observations by
// estimator kind — the accumulator behind each grid cell.
type EstCollector struct {
	mu    sync.Mutex
	kinds map[string]*EstAccuracy
}

// NewEstCollector returns an empty collector.
func NewEstCollector() *EstCollector {
	return &EstCollector{kinds: map[string]*EstAccuracy{}}
}

// ObserveEstimate implements EstObserver.
func (c *EstCollector) ObserveEstimate(kind string, predicted, actual float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	acc := c.kinds[kind]
	if acc == nil {
		acc = &EstAccuracy{}
		c.kinds[kind] = acc
	}
	acc.Add(predicted, actual)
}

// Kinds returns the estimator kinds observed so far, sorted.
func (c *EstCollector) Kinds() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.kinds))
	for k := range c.kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Accuracy returns a snapshot of the accumulated q-errors for one kind
// (empty accumulator if the kind was never observed).
func (c *EstCollector) Accuracy(kind string) EstAccuracy {
	c.mu.Lock()
	defer c.mu.Unlock()
	if acc := c.kinds[kind]; acc != nil {
		return EstAccuracy{qerrs: append([]float64(nil), acc.qerrs...)}
	}
	return EstAccuracy{}
}
