package perfmodel

import "time"

// Chunked-prefill terms: the analytical counterparts of the serving layer's
// chunked admission (runtime.Session.PrefillChunk). A prompt of s tokens is
// prefilled in ceil(s/c) chunks of at most c tokens; each chunk streams every
// layer once, computes causal attention of its rows against all earlier
// positions, and offloads its KV rows. The per-chunk attention term is what
// distinguishes the chunked model from a token-proportional split: the chunk
// covering rows [b, b+t) attends over b+t positions, so
//
//	attnFlops(b, t) = (4·t·(b+t)·h1 + 8·t·h1²)·bls
//
// which recovers TPrefill's (4·s²·h1 + 8·s·h1²)·bls exactly at b=0, t=s. The
// MLP and KV-offload terms are row-proportional, so they split linearly.
//
// These closed forms are the reference the chunked conformance suite holds
// the discrete-event simulator to at hard float tolerance: per-kind busy
// totals are schedule-independent (a task's busy time is its service time
// wherever the scheduler places it), so sim and model must agree to rounding
// error, not calibration error.

// ChunkPrefillParts returns the per-layer task durations (seconds) of the
// prefill chunk covering prompt rows [base, base+tokens): the streamed weight
// upload, the GPU compute (attention over base+tokens positions + MLP + the
// chunk's share of the Eq. 20 quantization surcharge), and the chunk's KV
// offload on the downlink.
func (e *Estimator) ChunkPrefillParts(base, tokens int) (loadWeight, compute, kvDown float64) {
	if tokens <= 0 {
		return 0, 0, 0
	}
	g := e.gpu()
	b, t := float64(base), float64(tokens)
	bls := float64(e.Work.BlockSize())
	h1, h2 := float64(e.Mod.Hidden), float64(e.Mod.FFN)
	attnFlops := (4*t*(b+t)*h1 + 8*t*h1*h1) * bls
	mlpFlops := 4 * t * h1 * h2 * bls
	compute = (attnFlops + mlpFlops) / g.Flops
	if s := float64(e.Work.PromptLen); s > 0 {
		// The one-time prefill-KV quantization cost (Eq. 20) splits by rows.
		compute += e.QuanPfCache().Total() * t / s
	}

	loadWeight = e.WeightUpTime()

	// The final chunk also offloads the first generated token's KV row, so
	// the chunked rows sum to the monolithic prefillKVBytes (s+1 rows).
	kvRows := t
	if base+tokens >= e.Work.PromptLen {
		kvRows++
	}
	kvBytes := 2 * kvRows * h1 * bls * float64(e.Mod.BytesPerElem)
	if e.Strat.AttnOnCPU {
		kvDown = kvBytes / e.linkBW()
	} else {
		kvDown = kvBytes * (1 - e.Strat.CacheGPUPct) * e.Strat.kvQuantRatio() / e.linkBW()
	}
	return loadWeight, compute, kvDown
}

// ChunkedPrefillTasks returns the total per-kind busy time (seconds) of
// prefilling the whole prompt in chunks of at most `chunk` tokens, summed
// over every chunk and every layer. chunk <= 0 (or >= the prompt) degenerates
// to one monolithic chunk. Only the three kinds a prefill exercises are
// populated (LoadWeight, Compute, StoreCache).
func (e *Estimator) ChunkedPrefillTasks(chunk int) TaskTimes {
	s := e.Work.PromptLen
	var tt TaskTimes
	if s <= 0 {
		return tt
	}
	if chunk <= 0 || chunk > s {
		chunk = s
	}
	l := float64(e.Mod.Layers)
	for base := 0; base < s; base += chunk {
		t := chunk
		if s-base < t {
			t = s - base
		}
		lw, comp, kv := e.ChunkPrefillParts(base, t)
		tt.LoadWeight += lw * l
		tt.Compute += comp * l
		tt.StoreCache += kv * l
	}
	return tt
}

// ChunkedPrefillChunks returns how many chunks a prompt of the workload's
// length needs at the given chunk size.
func (e *Estimator) ChunkedPrefillChunks(chunk int) int {
	s := e.Work.PromptLen
	if s <= 0 {
		return 0
	}
	if chunk <= 0 || chunk > s {
		return 1
	}
	return (s + chunk - 1) / chunk
}

// TPrefillChunked is the ideal-overlap makespan estimate of a chunked
// prefill: per chunk and layer the busiest of {weight upload, compute, KV
// offload} bounds the step (the Eq. 2 composition TPrefill uses), summed over
// all chunks and layers. It upper-bounds nothing the conformance suite pins
// exactly — the DES makespan is compared structurally (>= the busiest kind's
// total, <= the serial sum) — but it is the number drain and TTFT predictions
// want: the chunked prefill's wall time under ideal overlap.
func (e *Estimator) TPrefillChunked(chunk int) float64 {
	s := e.Work.PromptLen
	if s <= 0 {
		return 0
	}
	if chunk <= 0 || chunk > s {
		chunk = s
	}
	l := float64(e.Mod.Layers)
	var total float64
	for base := 0; base < s; base += chunk {
		t := chunk
		if s-base < t {
			t = s - base
		}
		lw, comp, kv := e.ChunkPrefillParts(base, t)
		m := comp
		if lw > m {
			m = lw
		}
		if kv > m {
			m = kv
		}
		total += m * l
	}
	return total
}

// PredictChunked is the fitted prefill-cost model's chunked prediction: a
// prompt split into ceil(tokens/chunk) chunks pays the fixed per-admission
// cost (layer streaming setup) once per chunk and the per-token cost once per
// token: T ≈ ceil(n/c)·fixed + perToken·n. chunk <= 0 (chunking disabled) or
// chunk >= tokens degenerates to the monolithic Predict. Zero before Ready.
func (m *PrefillCostModel) PredictChunked(tokens, chunk int) time.Duration {
	if tokens <= 0 {
		return 0
	}
	if chunk <= 0 || chunk >= tokens {
		return m.Predict(tokens)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.ready() {
		return 0
	}
	fixed, perToken := m.coefficients()
	chunks := float64((tokens + chunk - 1) / chunk)
	return time.Duration((fixed*chunks + perToken*float64(tokens)) * float64(time.Second))
}

// PredictTPOTWithChunk is the step-cost model's bound on a decode stream's
// inter-token gap while a chunked prefill interleaves: one decode step at the
// given occupancy plus at most one chunk's prefill cost. This is the
// TPOT-spike bound chunking buys — chunkCost is bounded by construction
// (ChunkTokens), where a monolithic admission's stall is bounded only by the
// arriving prompt's length.
func (m *StepCostModel) PredictTPOTWithChunk(occupancy int, chunkCost time.Duration) time.Duration {
	step := m.PredictTPOT(occupancy)
	if step <= 0 {
		return 0
	}
	if chunkCost < 0 {
		chunkCost = 0
	}
	return step + chunkCost
}

// ChunkStateBytes is the admission model's bound on the host memory a
// chunked prefill retains while in flight: the raw float32 rows of the whole
// prompt across every layer (the live cache quantized slots keep so later
// chunks attend against raw history). The bound is reached just before the
// final chunk completes; the fuzz harness asserts observed peaks never
// exceed it.
func (a AdmissionModel) ChunkStateBytes(promptLen, layers int) int64 {
	if promptLen < 0 {
		promptLen = 0
	}
	if layers < 0 {
		layers = 0
	}
	per := satMul64(2, satMul64(int64(a.HiddenDim), int64(a.BytesPerElem)))
	return satMul64(int64(layers), satMul64(int64(promptLen), per))
}
