package perfmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/trace"
)

// fixture returns the paper's §3.1 motivation setup: OPT-30B on the A100
// platform, s=64, n=128, bsz=64, bls=640.
func fixture(t *testing.T, s Strategy, exec ExecProfile) *Estimator {
	t.Helper()
	e, err := New(hw.SingleGPUA100(), model.OPT30B, trace.PaperDefault(), s, exec)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestStrategyValidate(t *testing.T) {
	good := []Strategy{
		{},
		{AttnOnCPU: true, WeightsGPUPct: 0.5},
		{QuantWeights: true, WeightBits: 4, GroupSize: 64},
		{QuantWeights: true, WeightBits: 4, CompressGPUWeights: true, GroupSize: 64},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	bad := []Strategy{
		{WeightsGPUPct: 1.5},
		{CacheGPUPct: -0.1},
		{QuantWeights: true, WeightBits: 0, GroupSize: 64},
		{QuantKV: true, KVBits: 9, GroupSize: 64},
		{QuantKV: true, KVBits: 4, GroupSize: 0},
		{AttnOnCPU: true, CacheGPUPct: 0.5},
		{CompressGPUWeights: true},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid strategy", s)
		}
	}
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []ExecProfile{FlexGenProfile(), ZeROProfile(), LMOffloadProfile(), LMOffloadNoParallelismControl()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	broken := FlexGenProfile()
	broken.OverlapBeta = 1.5
	if err := broken.Validate(); err == nil {
		t.Error("Validate accepted beta > 1")
	}
}

// within asserts got is within frac of want.
func within(t *testing.T, name string, got, want, frac float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", name)
	}
	if r := got / want; r < 1-frac || r > 1+frac {
		t.Errorf("%s = %.2f, want %.2f ± %.0f%%", name, got, want, frac*100)
	}
}

// TestFigure3Shape reproduces the §3.1 motivation study: the eight
// offloading × quantization combinations must order exactly as Figure 3, and
// land near the paper's absolute throughputs (wide tolerance — our substrate
// is a model, not their testbed).
func TestFigure3Shape(t *testing.T) {
	fg := FlexGenProfile()
	tput := func(s Strategy) float64 { return fixture(t, s, fg).Throughput() }

	offNone := tput(Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60})
	offW := tput(Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60, QuantWeights: true, WeightBits: 4, GroupSize: 64})
	noNone := tput(Strategy{WeightsGPUPct: 0.55})
	noW := tput(Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, GroupSize: 64})
	noKV := tput(Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64})
	noBoth := tput(Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64})

	// Observation 1: with attention offloading, quantization always loses.
	if offW >= offNone {
		t.Errorf("with attention offload, weight quantization should hurt: %.1f >= %.1f", offW, offNone)
	}
	// Observation 1: without attention offloading, (KV) quantization wins big.
	if noKV <= noNone {
		t.Errorf("without attention offload, KV quantization should help: %.1f <= %.1f", noKV, noNone)
	}
	// Observation 2 ordering: kv-only > both > none > weights-only.
	if !(noKV > noBoth && noBoth > noNone && noNone > noW) {
		t.Errorf("Figure 3 ordering violated: kv=%.1f both=%.1f none=%.1f w=%.1f", noKV, noBoth, noNone, noW)
	}
	// Paper's absolute values (tokens/s): 41, 32, 46, 35, 82, 55.
	within(t, "offload/none", offNone, 41, 0.35)
	within(t, "offload/w4", offW, 32, 0.35)
	within(t, "noattn/none", noNone, 46, 0.35)
	within(t, "noattn/w4", noW, 35, 0.35)
	within(t, "noattn/kv4", noKV, 82, 0.35)
	within(t, "noattn/both", noBoth, 55, 0.35)
}

// TestTable1Traffic reproduces the per-token I/O volumes of Table 1.
func TestTable1Traffic(t *testing.T) {
	fg := FlexGenProfile()
	gb := 1e9

	with := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.72}, fg).Traffic()
	within(t, "with-offload weights up", with.WeightsUp/gb, 16.32, 0.25)
	within(t, "with-offload activation up", with.ActivationUp/gb, 0.38, 0.35)
	within(t, "with-offload activation down", with.ActivationDown/gb, 0.38, 0.35)
	if with.KVCacheUp != 0 || with.KVCacheDown != 0 {
		t.Errorf("attention offload must move no KV cache, got %g up %g down", with.KVCacheUp, with.KVCacheDown)
	}
	if with.WeightsDown != 0 {
		t.Errorf("weights never move GPU->CPU, got %g", with.WeightsDown)
	}

	without := fixture(t, Strategy{WeightsGPUPct: 0.35}, fg).Traffic()
	within(t, "no-offload weights up", without.WeightsUp/gb, 38.88, 0.25)
	// Paper reports 78.72 GB of old KV per token; our Eq. 18 averaging gives
	// ~113 GB — same order, wider tolerance.
	within(t, "no-offload kv up", without.KVCacheUp/gb, 78.72, 0.55)
	within(t, "no-offload kv down", without.KVCacheDown/gb, 0.8, 0.25)
	// The headline claim: attention offloading removes ~99.5% of the KV
	// upload and tens of GB of weight traffic.
	if with.Total() >= without.Total() {
		t.Errorf("attention offload should reduce total traffic: %.1f >= %.1f GB", with.Total()/gb, without.Total()/gb)
	}
}

// TestFigure4Breakdown checks the quantization-time decomposition: with
// attention offloading the (de)quantization overhead is zero; without it,
// dequantization dominates quantization (the old cache and weights dwarf the
// new KV rows).
func TestFigure4Breakdown(t *testing.T) {
	fg := FlexGenProfile()
	off := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.6, QuantKV: true, KVBits: 4, GroupSize: 64}, fg)
	b := off.Breakdown()
	if b.QuantPerToken != 0 || b.DequantPerToken != 0 {
		t.Errorf("attention offload should have zero KV (de)quantization, got %+v", b)
	}

	no := fixture(t, Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}, fg)
	nb := no.Breakdown()
	if nb.QuantPerToken <= 0 || nb.DequantPerToken <= 0 {
		t.Fatalf("expected nonzero (de)quantization, got %+v", nb)
	}
	if nb.DequantPerToken <= nb.QuantPerToken {
		t.Errorf("dequantization (%.3fs) should dominate quantization (%.3fs)", nb.DequantPerToken, nb.QuantPerToken)
	}
	if nb.OtherPerToken <= 0 {
		t.Errorf("other time should be positive, got %g", nb.OtherPerToken)
	}
}

// TestDecisionProcedures checks §3.2's "How to use the models".
func TestDecisionProcedures(t *testing.T) {
	fg := FlexGenProfile()
	// KV quantization: beneficial without attention offloading, never with.
	no := fixture(t, Strategy{WeightsGPUPct: 0.55}, fg)
	if !no.KVQuantizationBeneficial(4) {
		t.Error("KV quantization should be beneficial without attention offloading")
	}
	off := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.6}, fg)
	if off.KVQuantizationBeneficial(4) {
		t.Error("KV quantization must never be beneficial with attention offloading")
	}
	// BestKVBits agrees with the boolean procedure.
	if bits := no.BestKVBits(); bits == 0 {
		t.Error("BestKVBits found no profitable width without attention offloading")
	}
	if bits := off.BestKVBits(); bits != 0 {
		t.Errorf("BestKVBits = %d with attention offloading, want 0", bits)
	}
}

// TestAttentionOffloadComparison: for the long-generation workload the KV
// traffic without offloading dominates, so with plain FlexGen execution and
// no quantization, offloading attention wins; with KV quantization the
// GPU-attention arm wins (the §3.1 conclusion that motivates modeling).
func TestAttentionOffloadComparison(t *testing.T) {
	fg := FlexGenProfile()
	off := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60}, fg)
	noPlain := fixture(t, Strategy{WeightsGPUPct: 0.55}, fg)
	noQuant := fixture(t, Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}, fg)

	_, plainTput := AttentionOffloadComparison(off, noPlain)
	offTput, quantTput := AttentionOffloadComparison(off, noQuant)
	if quantTput <= offTput {
		t.Errorf("GPU attention + KV quant (%.1f) should beat CPU attention (%.1f) here", quantTput, offTput)
	}
	if quantTput <= plainTput {
		t.Errorf("KV quant (%.1f) should beat plain GPU attention (%.1f)", quantTput, plainTput)
	}
}

// TestEq2MaxLowerBoundsComposition: the β composition never beats the ideal
// Eq. 2 max, and never exceeds full serialization.
func TestEq2MaxLowerBoundsComposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Strategy{
			WeightsGPUPct: rng.Float64(),
			CacheGPUPct:   rng.Float64() * 0.5,
			ActGPUPct:     rng.Float64(),
		}
		if rng.Intn(2) == 0 {
			s.AttnOnCPU = true
			s.CacheGPUPct = 0
		}
		if rng.Intn(2) == 0 {
			s.QuantKV = true
			s.KVBits = 4
			s.GroupSize = 64
		}
		exec := FlexGenProfile()
		exec.OverlapBeta = rng.Float64()
		e, err := New(hw.SingleGPUA100(), model.OPT30B, trace.PaperDefault(), s, exec)
		if err != nil {
			return false
		}
		p := e.Parts()
		gpu := p.GPUCompute + p.GPUQuant
		ideal := max4(p.LinkUp, p.LinkDown, p.CPUCompute, gpu)
		serial := e.TGenSerial()
		tg := e.TGen()
		return tg >= ideal-1e-12 && tg <= serial+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestThroughputMonotonicInLinkEff: better link efficiency never lowers
// throughput.
func TestThroughputMonotonicInLinkEff(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := Strategy{WeightsGPUPct: rng.Float64() * 0.9}
		lo := FlexGenProfile()
		lo.LinkEff = 0.2 + rng.Float64()*0.3
		hi := lo
		hi.LinkEff = lo.LinkEff + 0.2
		el, err := New(hw.SingleGPUA100(), model.OPT30B, trace.PaperDefault(), s, lo)
		if err != nil {
			return false
		}
		eh, err := New(hw.SingleGPUA100(), model.OPT30B, trace.PaperDefault(), s, hi)
		if err != nil {
			return false
		}
		return eh.Throughput() >= el.Throughput()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMoreWeightsOnGPUHelps: raising wg strictly reduces the weight-upload
// component and never lowers throughput when memory is ignored.
func TestMoreWeightsOnGPUHelps(t *testing.T) {
	fg := FlexGenProfile()
	prev := -1.0
	for _, wg := range []float64{0, 0.25, 0.5, 0.75, 1} {
		tput := fixture(t, Strategy{WeightsGPUPct: wg}, fg).Throughput()
		if tput < prev-1e-9 {
			t.Errorf("throughput decreased when raising wg to %g: %.2f < %.2f", wg, tput, prev)
		}
		prev = tput
	}
}

func TestTasksAndTrafficConsistency(t *testing.T) {
	fg := FlexGenProfile()
	e := fixture(t, Strategy{WeightsGPUPct: 0.55}, fg)
	tasks := e.DecodeTasks()
	if tasks.Max() > tasks.Sum() {
		t.Error("Max exceeds Sum")
	}
	if tasks.LoadCache <= tasks.StoreCache {
		t.Error("loading the old cache must dwarf storing the new rows")
	}
	tr := e.Traffic()
	// Per-token upload bytes imply at least LoadWeight+LoadCache+LoadAct of
	// link time per token; cross-check order of magnitude.
	upTime := tr.TotalUp() / (e.Plat.Link.BandwidthPerDir * fg.LinkEff)
	perLayer := upTime / float64(e.Mod.Layers)
	taskUp := tasks.LoadWeight + tasks.LoadCache + tasks.LoadActivation
	if perLayer > taskUp*1.01 {
		t.Errorf("traffic-implied upload %.4fs exceeds task times %.4fs", perLayer, taskUp)
	}
}

func TestMemoryAccounting(t *testing.T) {
	fg := FlexGenProfile()
	// FlexGen's Table 3 OPT-30B row: wg=55, cg=0, hg=0, mem=214-222 GB.
	e := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}, fg)
	total := float64(e.TotalMemory()) / float64(hw.GiB)
	within(t, "OPT-30B total memory", total, 214, 0.25)
	if !e.Fits() {
		t.Error("FlexGen's published OPT-30B config should fit the A100 platform")
	}
	// All-on-GPU cannot fit OPT-30B on a 40 GB card.
	whale := fixture(t, Strategy{WeightsGPUPct: 1, CacheGPUPct: 1, ActGPUPct: 1}, fg)
	if whale.Fits() {
		t.Error("OPT-30B fully on-GPU reported as fitting a 40 GB A100")
	}
	// Compressed GPU weights shrink the GPU footprint.
	plain := fixture(t, Strategy{WeightsGPUPct: 0.75, QuantWeights: true, WeightBits: 4, GroupSize: 64}, fg)
	packed := fixture(t, Strategy{WeightsGPUPct: 0.75, QuantWeights: true, WeightBits: 4, CompressGPUWeights: true, GroupSize: 64}, fg)
	if packed.Memory().GPU >= plain.Memory().GPU {
		t.Error("CompressGPUWeights did not reduce the GPU footprint")
	}
}

func TestLatencyComposition(t *testing.T) {
	fg := FlexGenProfile()
	e := fixture(t, Strategy{WeightsGPUPct: 0.55}, fg)
	l := float64(e.Mod.Layers)
	n := float64(e.Work.GenLen)
	want := e.TInit() + e.TPrefill()*l + e.TGen()*(n-1)*l
	if got := e.Latency(); got != want {
		t.Errorf("Latency = %g, want Eq. 1 composition %g", got, want)
	}
	if e.GenerationLatency() >= e.Latency() {
		t.Error("GenerationLatency must exclude T_init")
	}
	if e.TInit() <= 0 {
		t.Error("T_init must be positive")
	}
}

func TestQuantCostPhases(t *testing.T) {
	fg := FlexGenProfile()
	e := fixture(t, Strategy{WeightsGPUPct: 0.5, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}, fg)
	// Quantization pays the min/max scan; dequantization does not (Eqs. 16, 24).
	if e.QuanPfWgt().MinMax <= 0 {
		t.Error("weight quantization should pay a min/max scan")
	}
	if e.DequanWgt().MinMax != 0 {
		t.Error("weight dequantization must not pay a min/max scan")
	}
	if e.QuanNewCache().MinMax <= 0 {
		t.Error("KV quantization should pay a min/max scan")
	}
	if e.DequanOldCache().MinMax != 0 {
		t.Error("KV dequantization must not pay a min/max scan")
	}
	// Per-batch weight decompression: FlexGen pays NumBatches times what a
	// caching runtime pays.
	cached := *e
	cached.Exec.CacheDequantWeights = true
	ratio := e.DequanWgtPerToken() / cached.DequanWgtPerToken()
	if int(ratio+0.5) != e.Work.NumBatches {
		t.Errorf("per-batch dequant ratio = %.1f, want %d", ratio, e.Work.NumBatches)
	}
}

func TestLMOffloadBeatsFlexGenOnPaperConfigs(t *testing.T) {
	// Table 3 OPT-30B n=128: FlexGen 41 vs LM-Offload 102 (2.49×). Our model
	// should land in the 1.5–4× band with the published policies.
	fgE := fixture(t, Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}, FlexGenProfile())
	lmE := fixture(t, Strategy{WeightsGPUPct: 0.75, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, CompressGPUWeights: true, GroupSize: 64}, LMOffloadProfile())
	ratio := lmE.Throughput() / fgE.Throughput()
	if ratio < 1.5 || ratio > 4.0 {
		t.Errorf("LM-Offload/FlexGen = %.2f, want within [1.5, 4.0] (paper: 2.49)", ratio)
	}
}

func TestNewValidatesEverything(t *testing.T) {
	plat := hw.SingleGPUA100()
	if _, err := New(plat, model.OPT30B, trace.PaperDefault(), Strategy{WeightsGPUPct: 2}, FlexGenProfile()); err == nil {
		t.Error("New accepted invalid strategy")
	}
	if _, err := New(plat, model.Config{}, trace.PaperDefault(), Strategy{}, FlexGenProfile()); err == nil {
		t.Error("New accepted invalid model")
	}
	if _, err := New(plat, model.OPT30B, trace.Workload{}, Strategy{}, FlexGenProfile()); err == nil {
		t.Error("New accepted invalid workload")
	}
	bad := FlexGenProfile()
	bad.LinkEff = 0
	if _, err := New(plat, model.OPT30B, trace.PaperDefault(), Strategy{}, bad); err == nil {
		t.Error("New accepted invalid profile")
	}
}
