package perfmodel

// The three decision procedures of §3.2 ("How to use the models"). Each
// compares the modeled cost of a strategy with and without one quantization
// or offloading choice, holding everything else fixed.

// WeightQuantizationBeneficial decides whether quantizing the CPU-resident
// weights pays off: it compares load_weight without quantization against
// Eq. 4's quantized load (the Eq. 3 one-time cost is amortized over the
// whole generation and charged per token here).
func (e *Estimator) WeightQuantizationBeneficial(bits int) bool {
	plain := *e
	plain.Strat.QuantWeights = false
	quant := *e
	quant.Strat.QuantWeights = true
	quant.Strat.WeightBits = bits
	if quant.Strat.GroupSize <= 0 {
		quant.Strat.GroupSize = 64
	}

	tokens := float64(e.Work.GenLen)
	plainCost := plain.DecodeTasks().LoadWeight
	quantCost := quant.DecodeTasks().LoadWeight +
		quant.QuanPfWgt().Total()/tokens // amortized Eq. 3 surcharge
	return quantCost < plainCost
}

// KVQuantizationBeneficial decides whether quantizing the KV cache pays off:
// it compares (load_cache + store_cache) against Eq. 6 + Eq. 7. With
// attention offloaded the KV cache never moves, so quantization can only
// cost (§3.1 Observation 1) and the answer is always false.
func (e *Estimator) KVQuantizationBeneficial(bits int) bool {
	if e.Strat.AttnOnCPU {
		return false
	}
	plain := *e
	plain.Strat.QuantKV = false
	quant := *e
	quant.Strat.QuantKV = true
	quant.Strat.KVBits = bits
	if quant.Strat.GroupSize <= 0 {
		quant.Strat.GroupSize = 64
	}

	pt := plain.DecodeTasks()
	qt := quant.DecodeTasks()
	tokens := float64(e.Work.GenLen)
	plainCost := pt.LoadCache + pt.StoreCache
	quantCost := qt.LoadCache + qt.StoreCache + quant.QuanPfCache().Total()/tokens
	return quantCost < plainCost
}

// AttentionOffloadComparison evaluates the same model/workload with
// attention on CPU versus on GPU (each with its own best wg computed by the
// caller) and returns the two throughputs. The paper's third decision
// procedure compares Eqs. 8–9 with Eqs. 3–7; here both arms are evaluated
// with the full model for symmetry.
func AttentionOffloadComparison(withOffload, withoutOffload *Estimator) (offloadTput, noOffloadTput float64) {
	return withOffload.Throughput(), withoutOffload.Throughput()
}

// BestKVBits scans the supported code widths and returns the most profitable
// KV quantization width, or 0 when no width beats uncompressed transfer.
func (e *Estimator) BestKVBits() int {
	best, bestTput := 0, e.Throughput()
	for _, bits := range []int{2, 4, 8} {
		cand := *e
		cand.Strat.QuantKV = true
		cand.Strat.KVBits = bits
		if cand.Strat.GroupSize <= 0 {
			cand.Strat.GroupSize = 64
		}
		if tput := cand.Throughput(); tput > bestTput {
			best, bestTput = bits, tput
		}
	}
	return best
}

// BestWeightBits scans code widths for weight quantization, returning 0 when
// uncompressed is best.
func (e *Estimator) BestWeightBits() int {
	best, bestTput := 0, e.Throughput()
	for _, bits := range []int{2, 4, 8} {
		cand := *e
		cand.Strat.QuantWeights = true
		cand.Strat.WeightBits = bits
		if cand.Strat.GroupSize <= 0 {
			cand.Strat.GroupSize = 64
		}
		if tput := cand.Throughput(); tput > bestTput {
			best, bestTput = bits, tput
		}
	}
	return best
}
