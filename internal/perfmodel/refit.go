package perfmodel

import (
	"fmt"
	"math"
	"sync"
)

// ProfileRefitter estimates the live machine's slowdown against a reference
// fit and projects it onto an ExecProfile's hardware coefficients — the
// online-adaptation counterpart of StepCostModel's decayed step-cost refit.
// It accumulates an exponentially-decayed mean of log(measured/reference)
// latency ratios (log-domain so 2× slower and 2× faster average to neutral),
// so the factor tracks drift with the same ~30-sample horizon the step-cost
// fit uses. All methods are safe for concurrent use.
type ProfileRefitter struct {
	mu      sync.Mutex
	logSum  float64 // decayed sum of log ratios
	weight  float64 // decayed sample weight
	samples int64
}

// refitDecay matches stepCostDecay: the refit factor and the step-cost fit
// drift at the same rate, so the search runs against coefficients consistent
// with the admission model's live view.
const refitDecay = stepCostDecay

// refitMinSamples gates Factor until the decayed mean is meaningful.
const refitMinSamples = 8

// refit factor clamp: a refit can claim at most 16× slowdown or speedup, so
// a corrupted observation stream cannot drive the profile to a degenerate
// corner the policy search would misread.
const maxRefitFactor = 16.0

// Observe folds one (measured, reference) latency pair into the decayed fit.
// Non-positive values are dropped.
func (r *ProfileRefitter) Observe(measured, reference float64) {
	if measured <= 0 || reference <= 0 {
		return
	}
	l := math.Log(measured / reference)
	r.mu.Lock()
	r.logSum = r.logSum*refitDecay + l
	r.weight = r.weight*refitDecay + 1
	r.samples++
	r.mu.Unlock()
}

// Ready reports whether enough pairs have been observed to trust Factor.
func (r *ProfileRefitter) Ready() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples >= refitMinSamples
}

// Samples returns how many pairs have been observed.
func (r *ProfileRefitter) Samples() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// Reset drops the accumulated fit (used when the reference is re-anchored
// after a policy commit: old ratios were measured against a stale baseline).
func (r *ProfileRefitter) Reset() {
	r.mu.Lock()
	r.logSum, r.weight, r.samples = 0, 0, 0
	r.mu.Unlock()
}

// Factor returns the fitted slowdown multiplier (>1 means the machine runs
// slower than the reference fit; 1 before Ready), clamped to
// [1/maxRefitFactor, maxRefitFactor].
func (r *ProfileRefitter) Factor() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.samples < refitMinSamples || r.weight <= 0 {
		return 1
	}
	f := math.Exp(r.logSum / r.weight)
	if f > maxRefitFactor {
		return maxRefitFactor
	}
	if f < 1/maxRefitFactor {
		return 1 / maxRefitFactor
	}
	return f
}

// RefitProfile projects a measured slowdown factor onto the profile's
// hardware coefficients: effective CPU compute and link efficiency scale
// down by the factor and the fixed per-step overhead scales up, each clamped
// to its valid range, so the returned profile always passes Validate. A
// factor of 1 returns the profile unchanged; factors below 1 (the machine
// got faster) scale the other way, capped at the coefficients' ceilings.
func RefitProfile(p ExecProfile, factor float64) (ExecProfile, error) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return p, fmt.Errorf("perfmodel: refit factor %g must be positive and finite", factor)
	}
	if factor > maxRefitFactor {
		factor = maxRefitFactor
	}
	if factor < 1/maxRefitFactor {
		factor = 1 / maxRefitFactor
	}
	out := p
	out.Name = p.Name + "-refit"
	out.CPUCompute = clampUnitCoeff(p.CPUCompute / factor)
	out.LinkEff = clampUnitCoeff(p.LinkEff / factor)
	out.StepOverhead = p.StepOverhead * factor
	if err := out.Validate(); err != nil {
		return p, err
	}
	return out, nil
}

// clampUnitCoeff bounds a (0, 1] efficiency coefficient away from the open
// endpoint so extreme refit factors still yield a valid profile.
func clampUnitCoeff(v float64) float64 {
	const floor = 1.0 / 1024
	if v < floor {
		return floor
	}
	if v > 1 {
		return 1
	}
	return v
}
