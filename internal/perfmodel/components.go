package perfmodel

// Component link-time accessors: the raw per-layer, per-token transfer
// durations without quantization kernel surcharges (those are separate GPU
// tasks). The discrete-event simulator composes these itself instead of
// using the β-composition.

// WeightUpTime is the CPU->GPU time for one layer's streamed weight
// fraction.
func (e *Estimator) WeightUpTime() float64 {
	return e.layerWeightBytes() * e.Strat.WC() * e.Strat.weightQuantRatio() / e.linkBW()
}

// KVUpTime is the CPU->GPU time for one layer's old KV cache (zero with
// attention offloading).
func (e *Estimator) KVUpTime() float64 {
	if e.Strat.AttnOnCPU {
		return 0
	}
	return e.oldKVBytesAvg() * (1 - e.Strat.CacheGPUPct) * e.Strat.kvQuantRatio() / e.linkBW()
}

// KVDownTime is the GPU->CPU time for one layer's new KV rows.
func (e *Estimator) KVDownTime() float64 {
	if e.Strat.AttnOnCPU {
		return 0
	}
	return e.newKVBytes() * (1 - e.Strat.CacheGPUPct) * e.Strat.kvQuantRatio() / e.linkBW()
}

// ActUpTime is the CPU->GPU activation time for one layer.
func (e *Estimator) ActUpTime() float64 {
	act := e.activationBytes()
	if e.Strat.AttnOnCPU {
		return act / e.linkBW()
	}
	return act * (1 - e.Strat.ActGPUPct) / e.linkBW()
}

// ActDownTime is the GPU->CPU activation time for one layer.
func (e *Estimator) ActDownTime() float64 { return e.ActUpTime() }
