package quant

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzRoundTrip feeds arbitrary byte-derived floats and configurations
// through the quantizer, checking the invariants that must hold for any
// input: no panic, correct shape, and bounded per-group error.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(16))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Add([]byte{255, 0, 255, 0}, uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw, groupRaw uint8) {
		if len(raw) == 0 {
			return
		}
		bits := 1 + int(bitsRaw%8)
		group := 1 + int(groupRaw%65)
		data := make([]float32, len(raw))
		for i, b := range raw {
			data[i] = (float32(b) - 128) / 16
		}
		x := tensor.FromSlice(data, len(data))
		cfg := Config{Bits: bits, GroupSize: group}
		q, err := Quantize(x, cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		y := Dequantize(q)
		if y.Numel() != x.Numel() {
			t.Fatalf("shape changed: %d -> %d", x.Numel(), y.Numel())
		}
		// Error bound: half a step of the containing group's range.
		levels := float64(int(1)<<bits - 1)
		for i := range data {
			g := i / group
			lo, hi := g*group, (g+1)*group
			if hi > len(data) {
				hi = len(data)
			}
			mn, mx := data[lo], data[lo]
			for _, v := range data[lo:hi] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			bound := float64(mx-mn)/levels/2 + 1e-4
			if d := math.Abs(float64(y.Data()[i] - data[i])); d > bound {
				t.Fatalf("elem %d error %g exceeds bound %g (bits=%d group=%d)", i, d, bound, bits, group)
			}
		}
	})
}

// FuzzCorruptionDetect flips a byte in the packed payload of an arbitrary
// quantized tensor and asserts the checksum catches it: the quantizer must
// never silently dequantize garbage. CRC-32 detects any burst error up to 32
// bits, so a single non-zero XOR is always caught.
func FuzzCorruptionDetect(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(16), uint16(0), uint8(1))
	f.Add([]byte{0}, uint8(1), uint8(1), uint16(9), uint8(255))
	f.Add([]byte{255, 0, 255, 0, 7}, uint8(8), uint8(3), uint16(3), uint8(128))
	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw, groupRaw uint8, idx uint16, xor uint8) {
		if len(raw) == 0 {
			return
		}
		data := make([]float32, len(raw))
		for i, b := range raw {
			data[i] = (float32(b) - 128) / 16
		}
		cfg := Config{Bits: 1 + int(bitsRaw%8), GroupSize: 1 + int(groupRaw%65)}
		q, err := Quantize(tensor.FromSlice(data, len(data)), cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		if err := q.Verify(); err != nil {
			t.Fatalf("pristine tensor fails verification: %v", err)
		}
		if xor == 0 {
			return // no-op flip; nothing to detect
		}
		q.Corrupt(int(idx), xor)
		if err := q.Verify(); err == nil {
			t.Fatalf("byte %d xor %#x undetected (bits=%d group=%d payload=%d bytes)",
				idx, xor, cfg.Bits, cfg.GroupSize, q.PackedBytes())
		}
	})
}

// TestChecksumDetectsCorruption is the deterministic core of the fuzz
// target: every single-byte flip across the payload is detected, and clones
// are independent.
func TestChecksumDetectsCorruption(t *testing.T) {
	data := make([]float32, 100)
	for i := range data {
		data[i] = float32(i)*0.37 - 5
	}
	q, err := Quantize(tensor.FromSlice(data, 10, 10), Config{Bits: 4, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < int(q.PackedBytes()); i++ {
		c := q.Clone()
		c.Corrupt(i, 0x40)
		if err := c.Verify(); err == nil {
			t.Fatalf("flip at byte %d undetected", i)
		}
	}
	// Corrupting clones must not touch the original.
	if err := q.Verify(); err != nil {
		t.Fatalf("original damaged by clone corruption: %v", err)
	}
	// A repaired flip (XOR twice) verifies again.
	q.Corrupt(3, 0x08)
	q.Corrupt(3, 0x08)
	if err := q.Verify(); err != nil {
		t.Fatalf("double flip should cancel: %v", err)
	}
}
