package quant

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// FuzzRoundTrip feeds arbitrary byte-derived floats and configurations
// through the quantizer, checking the invariants that must hold for any
// input: no panic, correct shape, and bounded per-group error.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(16))
	f.Add([]byte{0}, uint8(1), uint8(1))
	f.Add([]byte{255, 0, 255, 0}, uint8(8), uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, bitsRaw, groupRaw uint8) {
		if len(raw) == 0 {
			return
		}
		bits := 1 + int(bitsRaw%8)
		group := 1 + int(groupRaw%65)
		data := make([]float32, len(raw))
		for i, b := range raw {
			data[i] = (float32(b) - 128) / 16
		}
		x := tensor.FromSlice(data, len(data))
		cfg := Config{Bits: bits, GroupSize: group}
		q, err := Quantize(x, cfg)
		if err != nil {
			t.Fatalf("valid config rejected: %v", err)
		}
		y := Dequantize(q)
		if y.Numel() != x.Numel() {
			t.Fatalf("shape changed: %d -> %d", x.Numel(), y.Numel())
		}
		// Error bound: half a step of the containing group's range.
		levels := float64(int(1)<<bits - 1)
		for i := range data {
			g := i / group
			lo, hi := g*group, (g+1)*group
			if hi > len(data) {
				hi = len(data)
			}
			mn, mx := data[lo], data[lo]
			for _, v := range data[lo:hi] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			bound := float64(mx-mn)/levels/2 + 1e-4
			if d := math.Abs(float64(y.Data()[i] - data[i])); d > bound {
				t.Fatalf("elem %d error %g exceeds bound %g (bits=%d group=%d)", i, d, bound, bits, group)
			}
		}
	})
}
