// Package quant implements FlexGen's group-wise quantization exactly as
// described by Algorithm 2 of the paper: pad the tensor so groups divide the
// quantization dimension evenly, find per-group min/max, min-max normalize
// into b bits (Eq. 10), and pack the codes into bytes. Dequantization
// reverses the last three phases (Eq. 11).
//
// The implementation does real bit packing so compressed sizes match what the
// I/O models charge for, and it reports per-phase element counts so the
// performance model's phase decomposition (min/max scan, normalization,
// post-processing copy) can be validated against the executable code.
package quant

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/tensor"
)

// Config selects the quantization parameters.
type Config struct {
	// Bits is the code width; must be in [1, 8].
	Bits int
	// GroupSize is the number of elements sharing one min/max pair; must be
	// positive. FlexGen's default is 64.
	GroupSize int
}

// DefaultConfig is FlexGen's default: 4-bit codes with 64-element groups.
func DefaultConfig() Config { return Config{Bits: 4, GroupSize: 64} }

// Validate reports invalid parameter combinations.
func (c Config) Validate() error {
	if c.Bits < 1 || c.Bits > 8 {
		return fmt.Errorf("quant: bits must be in [1, 8], got %d", c.Bits)
	}
	if c.GroupSize <= 0 {
		return fmt.Errorf("quant: group size must be positive, got %d", c.GroupSize)
	}
	return nil
}

// CompressionRatio returns the ideal size ratio versus 16-bit storage,
// ignoring the per-group min/max overhead (matching how the paper counts
// I/O reduction).
func (c Config) CompressionRatio() float64 { return float64(c.Bits) / 16 }

// Tensor is a quantized tensor: packed codes plus per-group dequantization
// parameters and enough geometry to reverse the padding.
type Tensor struct {
	cfg    Config
	shape  []int // original (unpadded) shape
	numel  int   // original element count
	padded int   // element count after padding to a multiple of GroupSize
	packed []byte
	mins   []float32
	scales []float32 // (max - min) per group
	crc    uint32    // CRC-32 (IEEE) over packed codes and group metadata
}

// checksum hashes the packed codes and the per-group dequantization
// parameters. CRC-32 detects every burst error up to 32 bits, so any
// single-byte corruption of the payload is caught.
func (q *Tensor) checksum() uint32 {
	h := crc32.NewIEEE()
	h.Write(q.packed)
	var buf [4]byte
	for i := range q.mins {
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(q.mins[i]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint32(buf[:], math.Float32bits(q.scales[i]))
		h.Write(buf[:])
	}
	return h.Sum32()
}

// seal records the tensor's checksum; called once at quantization time.
func (q *Tensor) seal() { q.crc = q.checksum() }

// Verify recomputes the checksum and reports corruption. A quantized tensor
// must never be silently dequantized after its payload was damaged in
// flight; callers check Verify after every transfer.
func (q *Tensor) Verify() error {
	if got := q.checksum(); got != q.crc {
		return fmt.Errorf("quant: checksum mismatch (stored %08x, computed %08x): corrupted tensor", q.crc, got)
	}
	return nil
}

// Checksum returns the sealed CRC.
func (q *Tensor) Checksum() uint32 { return q.crc }

// Clone returns a deep copy sharing no storage with q.
func (q *Tensor) Clone() *Tensor {
	cp := &Tensor{
		cfg:    q.cfg,
		shape:  append([]int(nil), q.shape...),
		numel:  q.numel,
		padded: q.padded,
		packed: append([]byte(nil), q.packed...),
		mins:   append([]float32(nil), q.mins...),
		scales: append([]float32(nil), q.scales...),
		crc:    q.crc,
	}
	return cp
}

// Corrupt XORs the packed byte at index i (modulo the payload length)
// without updating the checksum — fault-injection and test support for
// modeling in-flight bit flips. A zero xor is a no-op.
func (q *Tensor) Corrupt(i int, xor byte) {
	if len(q.packed) == 0 {
		return
	}
	q.packed[((i%len(q.packed))+len(q.packed))%len(q.packed)] ^= xor
}

// Config returns the parameters this tensor was quantized with.
func (q *Tensor) Config() Config { return q.cfg }

// Shape returns the original tensor shape.
func (q *Tensor) Shape() []int { return q.shape }

// PackedBytes returns the size of the packed code array — the payload the
// interconnect must move.
func (q *Tensor) PackedBytes() int64 { return int64(len(q.packed)) }

// TotalBytes returns packed codes plus per-group metadata (two float32 each),
// the full transfer size.
func (q *Tensor) TotalBytes() int64 {
	return int64(len(q.packed)) + int64(len(q.mins))*4 + int64(len(q.scales))*4
}

// Groups returns the number of quantization groups.
func (q *Tensor) Groups() int { return len(q.mins) }

// PhaseCounts reports the work per phase for a tensor of n elements under
// cfg, mirroring the performance model's accounting: the pad phase touches
// the padding tail only, min/max and normalize touch every padded element,
// and pack writes ceil(padded*bits/8) bytes.
type PhaseCounts struct {
	PadElems       int
	MinMaxElems    int
	NormalizeElems int
	PackBytes      int
}

// Phases returns the per-phase work for quantizing n elements.
func (c Config) Phases(n int) PhaseCounts {
	padded := paddedLen(n, c.GroupSize)
	return PhaseCounts{
		PadElems:       padded - n,
		MinMaxElems:    padded,
		NormalizeElems: padded,
		PackBytes:      (padded*c.Bits + 7) / 8,
	}
}

func paddedLen(n, group int) int {
	if rem := n % group; rem != 0 {
		return n + group - rem
	}
	return n
}

// Quantize compresses t under cfg. The tensor is treated as a flat row-major
// array grouped along the last (contiguous) dimension, matching FlexGen's
// quantize_dim default.
func Quantize(t *tensor.Tensor, cfg Config) (*Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := t.Data()
	n := len(src)
	padded := paddedLen(n, cfg.GroupSize)

	// Phase 1: pad. The tail replicates the last value so it cannot widen
	// the final group's range.
	work := src
	if padded != n {
		work = make([]float32, padded)
		copy(work, src)
		fill := src[n-1]
		for i := n; i < padded; i++ {
			work[i] = fill
		}
	}

	groups := padded / cfg.GroupSize
	q := &Tensor{
		cfg:    cfg,
		shape:  append([]int(nil), t.Shape()...),
		numel:  n,
		padded: padded,
		packed: make([]byte, (padded*cfg.Bits+7)/8),
		mins:   make([]float32, groups),
		scales: make([]float32, groups),
	}

	levels := float32(int(1)<<cfg.Bits - 1) // 2^b - 1
	codes := make([]uint8, cfg.GroupSize)
	for g := 0; g < groups; g++ {
		grp := work[g*cfg.GroupSize : (g+1)*cfg.GroupSize]

		// Phase 2: find min and max within the group.
		mn, mx := grp[0], grp[0]
		for _, v := range grp[1:] {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		q.mins[g] = mn
		scale := mx - mn
		q.scales[g] = scale

		// Phase 3: min-max normalization (Eq. 10) and clamping.
		if scale == 0 {
			for i := range codes {
				codes[i] = 0
			}
		} else {
			inv := levels / scale
			for i, v := range grp {
				c := float32(math.Round(float64((v - mn) * inv)))
				if c < 0 {
					c = 0
				} else if c > levels {
					c = levels
				}
				codes[i] = uint8(c)
			}
		}

		// Phase 4: pack codes into the bit stream.
		packBits(q.packed, g*cfg.GroupSize, codes, cfg.Bits)
	}
	q.seal()
	return q, nil
}

// Dequantize reconstructs a float32 tensor from q (Eq. 11). The padding tail
// is dropped so the result has the original shape.
func Dequantize(q *Tensor) *tensor.Tensor {
	out := make([]float32, q.padded)
	levels := float32(int(1)<<q.cfg.Bits - 1)
	codes := make([]uint8, q.cfg.GroupSize)
	for g := 0; g < len(q.mins); g++ {
		unpackBits(q.packed, g*q.cfg.GroupSize, codes, q.cfg.Bits)
		mn, scale := q.mins[g], q.scales[g]
		dst := out[g*q.cfg.GroupSize : (g+1)*q.cfg.GroupSize]
		if scale == 0 {
			for i := range dst {
				dst[i] = mn
			}
			continue
		}
		for i, c := range codes {
			dst[i] = float32(c)/levels*scale + mn
		}
	}
	return tensor.FromSlice(out[:q.numel], q.shape...)
}

// packBits writes codes (each < 2^bits) starting at element index start of
// the packed stream.
func packBits(dst []byte, start int, codes []uint8, bits int) {
	for i, c := range codes {
		bitPos := (start + i) * bits
		byteIdx := bitPos >> 3
		shift := bitPos & 7
		dst[byteIdx] |= c << shift
		if shift+bits > 8 {
			dst[byteIdx+1] |= c >> (8 - shift)
		}
	}
}

// unpackBits reads len(codes) codes starting at element index start.
func unpackBits(src []byte, start int, codes []uint8, bits int) {
	mask := uint16(1)<<bits - 1
	for i := range codes {
		bitPos := (start + i) * bits
		byteIdx := bitPos >> 3
		shift := bitPos & 7
		v := uint16(src[byteIdx]) >> shift
		if shift+bits > 8 && byteIdx+1 < len(src) {
			v |= uint16(src[byteIdx+1]) << (8 - shift)
		}
		codes[i] = uint8(v & mask)
	}
}

// MaxError returns the worst-case absolute reconstruction error bound for a
// group with the given value range under cfg: half a quantization step.
func (c Config) MaxError(valueRange float64) float64 {
	levels := float64(int(1)<<c.Bits - 1)
	return valueRange / levels / 2
}
