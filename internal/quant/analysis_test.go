package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestAnalyzeMoreBitsMoreSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandN(rng, 1, 64, 64)
	var prev float64 = math.Inf(-1)
	for _, bits := range []int{2, 4, 8} {
		st, err := Analyze(x, Config{Bits: bits, GroupSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		if st.SNRdB <= prev {
			t.Errorf("SNR did not improve with bits: %d bits -> %.1f dB (prev %.1f)", bits, st.SNRdB, prev)
		}
		prev = st.SNRdB
		if st.RMSE > st.MaxAbs {
			t.Errorf("RMSE %g exceeds max error %g", st.RMSE, st.MaxAbs)
		}
		if st.CompressionRatio <= 0 || st.CompressionRatio >= 1 {
			t.Errorf("%d bits: compression ratio %g outside (0, 1)", bits, st.CompressionRatio)
		}
	}
}

func TestAnalyzeSmallerGroupsMoreAccurate(t *testing.T) {
	// Finer groups track local ranges better: SNR improves, compression
	// ratio worsens (more metadata) — the trade the ablation sweeps.
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandN(rng, 1, 128, 64)
	fine, err := Analyze(x, Config{Bits: 4, GroupSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Analyze(x, Config{Bits: 4, GroupSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if fine.SNRdB <= coarse.SNRdB {
		t.Errorf("finer groups should be more accurate: %.1f dB <= %.1f dB", fine.SNRdB, coarse.SNRdB)
	}
	if fine.CompressionRatio <= coarse.CompressionRatio {
		t.Errorf("finer groups should cost more bytes: %.3f <= %.3f", fine.CompressionRatio, coarse.CompressionRatio)
	}
}

func TestAnalyzeExactSignal(t *testing.T) {
	x := tensor.Full(2.5, 64)
	st, err := Analyze(x, Config{Bits: 4, GroupSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(st.SNRdB, 1) || st.MaxAbs != 0 {
		t.Errorf("constant tensor should reconstruct exactly: %v", st)
	}
	if st.String() == "" {
		t.Error("empty String")
	}
}

func TestAnalyzeInvalidConfig(t *testing.T) {
	x := tensor.Full(1, 8)
	if _, err := Analyze(x, Config{Bits: 0, GroupSize: 8}); err == nil {
		t.Error("Analyze accepted invalid config")
	}
}
