package quant

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// ErrorStats quantifies a quantization configuration's reconstruction error
// on a concrete tensor — the accuracy side of the throughput/accuracy trade
// the policy search navigates.
type ErrorStats struct {
	// MaxAbs is the largest absolute reconstruction error.
	MaxAbs float64
	// RMSE is the root-mean-square error.
	RMSE float64
	// SNRdB is the signal-to-noise ratio in decibels
	// (10·log10(signal power / error power)); +Inf for exact recovery.
	SNRdB float64
	// CompressionRatio is stored bytes (including group metadata) over the
	// 4-byte float32 original.
	CompressionRatio float64
}

// Analyze quantizes t under cfg, reconstructs it, and reports the error.
func Analyze(t *tensor.Tensor, cfg Config) (ErrorStats, error) {
	q, err := Quantize(t, cfg)
	if err != nil {
		return ErrorStats{}, err
	}
	back := Dequantize(q)
	var maxAbs, errPow, sigPow float64
	src, rec := t.Data(), back.Data()
	for i := range src {
		d := float64(src[i]) - float64(rec[i])
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
		errPow += d * d
		sigPow += float64(src[i]) * float64(src[i])
	}
	n := float64(len(src))
	st := ErrorStats{
		MaxAbs:           maxAbs,
		RMSE:             math.Sqrt(errPow / n),
		CompressionRatio: float64(q.TotalBytes()) / float64(t.Bytes()),
	}
	if errPow == 0 {
		st.SNRdB = math.Inf(1)
	} else {
		st.SNRdB = 10 * math.Log10(sigPow/errPow)
	}
	return st, nil
}

// String renders the stats.
func (s ErrorStats) String() string {
	return fmt.Sprintf("max|err|=%.4g rmse=%.4g snr=%.1fdB ratio=%.3f", s.MaxAbs, s.RMSE, s.SNRdB, s.CompressionRatio)
}
