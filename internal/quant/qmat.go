package quant

import (
	"fmt"

	"repro/internal/tensor"
)

// QMat returns the packed view the fused quantized-domain kernels
// (tensor.MatMulQ and friends) consume. The view aliases q's storage and
// must be treated as read-only; callers verify the tensor's checksum before
// computing from it, exactly as they would before dequantizing. Only rank-2
// tensors have a matrix view.
func (q *Tensor) QMat() (tensor.QMat, error) {
	if len(q.shape) != 2 {
		return tensor.QMat{}, fmt.Errorf("quant: QMat on rank-%d tensor, want 2", len(q.shape))
	}
	return tensor.QMat{
		Packed:    q.packed,
		Mins:      q.mins,
		Scales:    q.scales,
		Bits:      q.cfg.Bits,
		GroupSize: q.cfg.GroupSize,
		Rows:      q.shape[0],
		Cols:      q.shape[1],
	}, nil
}
