package quant

import (
	"math"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// QuantizeParallel is Quantize with the per-group work spread over a worker
// pool: groups are independent (each has its own min/max and packed span
// when the group size keeps code spans byte-aligned), so the kernel
// parallelizes embarrassingly. Falls back to the serial kernel when the
// packed group span is not byte-aligned (groupSize*bits % 8 != 0), where
// adjacent groups would race on shared bytes.
func QuantizeParallel(pool *threadpool.Pool, width int, t *tensor.Tensor, cfg Config) (*Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pool == nil || width <= 1 || (cfg.GroupSize*cfg.Bits)%8 != 0 {
		return Quantize(t, cfg)
	}
	src := t.Data()
	n := len(src)
	padded := paddedLen(n, cfg.GroupSize)

	work := src
	if padded != n {
		work = make([]float32, padded)
		copy(work, src)
		fill := src[n-1]
		for i := n; i < padded; i++ {
			work[i] = fill
		}
	}

	groups := padded / cfg.GroupSize
	q := &Tensor{
		cfg:    cfg,
		shape:  append([]int(nil), t.Shape()...),
		numel:  n,
		padded: padded,
		packed: make([]byte, (padded*cfg.Bits+7)/8),
		mins:   make([]float32, groups),
		scales: make([]float32, groups),
	}
	levels := float32(int(1)<<cfg.Bits - 1)

	pool.ParallelRange(groups, width, func(lo, hi int) {
		codes := make([]uint8, cfg.GroupSize)
		for g := lo; g < hi; g++ {
			grp := work[g*cfg.GroupSize : (g+1)*cfg.GroupSize]
			mn, mx := grp[0], grp[0]
			for _, v := range grp[1:] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			q.mins[g] = mn
			scale := mx - mn
			q.scales[g] = scale
			if scale == 0 {
				for i := range codes {
					codes[i] = 0
				}
			} else {
				inv := levels / scale
				for i, v := range grp {
					c := float32(math.Round(float64((v - mn) * inv)))
					if c < 0 {
						c = 0
					} else if c > levels {
						c = levels
					}
					codes[i] = uint8(c)
				}
			}
			packBits(q.packed, g*cfg.GroupSize, codes, cfg.Bits)
		}
	})
	q.seal()
	return q, nil
}

// DequantizeParallel reverses QuantizeParallel over the pool. Groups write
// disjoint float32 output spans, but with a non-byte-aligned config
// (AlignedForParallel() == false, e.g. Bits=3/GroupSize=10) adjacent groups
// read shared packed bytes; like QuantizeParallel, those configs fall back
// to the serial kernel, which is bit-exact with the parallel one.
func DequantizeParallel(pool *threadpool.Pool, width int, q *Tensor) *tensor.Tensor {
	if pool == nil || width <= 1 || !q.cfg.AlignedForParallel() {
		return Dequantize(q)
	}
	out := make([]float32, q.padded)
	levels := float32(int(1)<<q.cfg.Bits - 1)
	pool.ParallelRange(len(q.mins), width, func(lo, hi int) {
		codes := make([]uint8, q.cfg.GroupSize)
		for g := lo; g < hi; g++ {
			unpackBits(q.packed, g*q.cfg.GroupSize, codes, q.cfg.Bits)
			mn, scale := q.mins[g], q.scales[g]
			dst := out[g*q.cfg.GroupSize : (g+1)*q.cfg.GroupSize]
			if scale == 0 {
				for i := range dst {
					dst[i] = mn
				}
				continue
			}
			for i, c := range codes {
				dst[i] = float32(c)/levels*scale + mn
			}
		}
	})
	return tensor.FromSlice(out[:q.numel], q.shape...)
}

// AlignedForParallel reports whether cfg's packed group span is
// byte-aligned, the condition for safe concurrent packing.
func (c Config) AlignedForParallel() bool { return (c.GroupSize*c.Bits)%8 == 0 }
