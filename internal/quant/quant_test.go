package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{{1, 1}, {4, 64}, {8, 128}}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v", c, err)
		}
	}
	bad := []Config{{0, 64}, {9, 64}, {4, 0}, {4, -3}}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid config", c)
		}
	}
}

func TestQuantizeRejectsInvalidConfig(t *testing.T) {
	x := tensor.Full(1, 4)
	if _, err := Quantize(x, Config{Bits: 0, GroupSize: 4}); err == nil {
		t.Error("Quantize accepted invalid config")
	}
}

func TestRoundTripErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandUniform(rng, -3, 3, 16, 32)
	for _, bits := range []int{2, 4, 8} {
		cfg := Config{Bits: bits, GroupSize: 64}
		q, err := Quantize(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		y := Dequantize(q)
		// Each group's range is at most 6; error bound is range/(2^b-1)/2
		// plus float rounding slack.
		bound := cfg.MaxError(6) * 1.01
		if d := x.MaxAbsDiff(y); d > bound {
			t.Errorf("bits=%d round-trip error %g exceeds bound %g", bits, d, bound)
		}
	}
}

func TestExactAtGroupExtremes(t *testing.T) {
	// Min and max of every group are representable exactly.
	x := tensor.FromSlice([]float32{-5, 0, 1, 10}, 4)
	q, err := Quantize(x, Config{Bits: 4, GroupSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	y := Dequantize(q)
	if y.Data()[0] != -5 {
		t.Errorf("group min reconstructed as %g, want -5", y.Data()[0])
	}
	if y.Data()[3] != 10 {
		t.Errorf("group max reconstructed as %g, want 10", y.Data()[3])
	}
}

func TestConstantGroupIsLossless(t *testing.T) {
	x := tensor.Full(3.25, 7, 9)
	q, err := Quantize(x, Config{Bits: 4, GroupSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	y := Dequantize(q)
	if d := x.MaxAbsDiff(y); d != 0 {
		t.Errorf("constant tensor round-trip error %g, want 0", d)
	}
}

func TestPaddingPreservesShape(t *testing.T) {
	// 10 elements with group size 8 forces a 6-element pad.
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2, 5)
	q, err := Quantize(x, Config{Bits: 8, GroupSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	y := Dequantize(q)
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != 5 {
		t.Fatalf("dequantized shape %v, want [2 5]", y.Shape())
	}
	if d := x.MaxAbsDiff(y); d > float64(9)/255/2*1.01 {
		t.Errorf("padded round-trip error %g too large", d)
	}
}

func TestPackedSizeMatchesBits(t *testing.T) {
	x := tensor.Full(1, 128)
	for _, bits := range []int{1, 3, 4, 5, 8} {
		q, err := Quantize(x, Config{Bits: bits, GroupSize: 32})
		if err != nil {
			t.Fatal(err)
		}
		want := int64((128*bits + 7) / 8)
		if q.PackedBytes() != want {
			t.Errorf("bits=%d PackedBytes = %d, want %d", bits, q.PackedBytes(), want)
		}
		if q.Groups() != 4 {
			t.Errorf("bits=%d Groups = %d, want 4", bits, q.Groups())
		}
		if q.TotalBytes() != want+4*4*2 {
			t.Errorf("bits=%d TotalBytes = %d, want %d", bits, q.TotalBytes(), want+32)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	if r := (Config{Bits: 4, GroupSize: 64}).CompressionRatio(); r != 0.25 {
		t.Errorf("4-bit ratio vs fp16 = %g, want 0.25", r)
	}
	if r := (Config{Bits: 8, GroupSize: 64}).CompressionRatio(); r != 0.5 {
		t.Errorf("8-bit ratio vs fp16 = %g, want 0.5", r)
	}
}

func TestPhases(t *testing.T) {
	c := Config{Bits: 4, GroupSize: 64}
	p := c.Phases(100)
	if p.PadElems != 28 {
		t.Errorf("PadElems = %d, want 28", p.PadElems)
	}
	if p.MinMaxElems != 128 || p.NormalizeElems != 128 {
		t.Errorf("scan phases = %d/%d, want 128/128", p.MinMaxElems, p.NormalizeElems)
	}
	if p.PackBytes != 64 {
		t.Errorf("PackBytes = %d, want 64", p.PackBytes)
	}
}

func TestBitPackingRoundTripAllWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for bits := 1; bits <= 8; bits++ {
		n := 67 // deliberately not a multiple of 8
		codes := make([]uint8, n)
		maxCode := uint8(1<<bits - 1)
		for i := range codes {
			codes[i] = uint8(rng.Intn(int(maxCode) + 1))
		}
		packed := make([]byte, (n*bits+7)/8)
		packBits(packed, 0, codes, bits)
		got := make([]uint8, n)
		unpackBits(packed, 0, got, bits)
		for i := range codes {
			if got[i] != codes[i] {
				t.Fatalf("bits=%d code %d: got %d, want %d", bits, i, got[i], codes[i])
			}
		}
	}
}

func TestDefaultConfigIsFlexGen(t *testing.T) {
	c := DefaultConfig()
	if c.Bits != 4 || c.GroupSize != 64 {
		t.Errorf("DefaultConfig = %+v, want 4 bits / 64 group", c)
	}
}

// Property: round-trip error never exceeds half a quantization step of the
// group's actual range.
func TestPropertyRoundTripBound(t *testing.T) {
	f := func(seed int64, bitsRaw, groupRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		bits := 1 + int(bitsRaw%8)
		group := 1 + int(groupRaw%100)
		n := 1 + rng.Intn(500)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 10)
		}
		x := tensor.FromSlice(data, n)
		cfg := Config{Bits: bits, GroupSize: group}
		q, err := Quantize(x, cfg)
		if err != nil {
			return false
		}
		y := Dequantize(q)
		// Check per-element error against the containing group's range.
		levels := float64(int(1)<<bits - 1)
		for i := range data {
			g := i / group
			lo, hi := i/group*group, (g+1)*group
			if hi > n {
				hi = n
			}
			mn, mx := data[lo], data[lo]
			for _, v := range data[lo:hi] {
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			bound := float64(mx-mn)/levels/2 + 1e-4*math.Max(1, math.Abs(float64(mx)))
			if math.Abs(float64(y.Data()[i]-data[i])) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: quantization is idempotent — re-quantizing a dequantized tensor
// with the same config reproduces it exactly (all values land on lattice
// points).
func TestPropertyIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64())
		}
		cfg := Config{Bits: 4, GroupSize: 32}
		q1, err := Quantize(tensor.FromSlice(data, n), cfg)
		if err != nil {
			return false
		}
		y1 := Dequantize(q1)
		q2, err := Quantize(y1, cfg)
		if err != nil {
			return false
		}
		y2 := Dequantize(q2)
		return y1.MaxAbsDiff(y2) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
