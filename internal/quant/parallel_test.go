package quant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := threadpool.MustNew(4)
	x := tensor.RandN(rng, 2, 100, 70) // 7000 elems, pads to group multiple
	for _, cfg := range []Config{{Bits: 4, GroupSize: 64}, {Bits: 8, GroupSize: 32}, {Bits: 2, GroupSize: 16}} {
		serial, err := Quantize(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := QuantizeParallel(pool, 4, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.packed) != len(par.packed) {
			t.Fatalf("%+v: packed sizes differ", cfg)
		}
		for i := range serial.packed {
			if serial.packed[i] != par.packed[i] {
				t.Fatalf("%+v: packed byte %d differs", cfg, i)
			}
		}
		a := Dequantize(serial)
		b := DequantizeParallel(pool, 4, par)
		if d := a.MaxAbsDiff(b); d != 0 {
			t.Fatalf("%+v: parallel dequantize differs by %g", cfg, d)
		}
	}
}

func TestParallelFallsBackOnMisalignedGroups(t *testing.T) {
	// 3-bit codes with group 10: 30 bits per group, not byte-aligned —
	// must fall back to the serial kernel and still be correct.
	cfg := Config{Bits: 3, GroupSize: 10}
	if cfg.AlignedForParallel() {
		t.Fatal("test premise wrong: config should be misaligned")
	}
	pool := threadpool.MustNew(4)
	x := tensor.RandN(rand.New(rand.NewSource(4)), 1, 5, 13)
	par, err := QuantizeParallel(pool, 4, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Quantize(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.packed {
		if serial.packed[i] != par.packed[i] {
			t.Fatalf("fallback path differs at byte %d", i)
		}
	}
}

func TestAlignedForParallel(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{Bits: 4, GroupSize: 64}, true},
		{Config{Bits: 8, GroupSize: 1}, true},
		{Config{Bits: 4, GroupSize: 2}, true},
		{Config{Bits: 4, GroupSize: 1}, false},
		{Config{Bits: 3, GroupSize: 10}, false},
		{Config{Bits: 5, GroupSize: 8}, true},
	}
	for _, tc := range cases {
		if got := tc.cfg.AlignedForParallel(); got != tc.want {
			t.Errorf("AlignedForParallel(%+v) = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestParallelInvalidConfig(t *testing.T) {
	pool := threadpool.MustNew(2)
	x := tensor.Full(1, 8)
	if _, err := QuantizeParallel(pool, 2, x, Config{Bits: 0, GroupSize: 8}); err == nil {
		t.Error("invalid config accepted")
	}
}

// Property: for random tensors and aligned configs, the parallel and serial
// kernels agree bit-exactly at every width.
func TestPropertyParallelEquivalence(t *testing.T) {
	pool := threadpool.MustNew(4)
	f := func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + int(widthRaw%6)
		n := 1 + rng.Intn(800)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 4)
		}
		x := tensor.FromSlice(data, n)
		cfg := Config{Bits: 4, GroupSize: 32}
		a, err := Quantize(x, cfg)
		if err != nil {
			return false
		}
		b, err := QuantizeParallel(pool, width, x, cfg)
		if err != nil {
			return false
		}
		for i := range a.packed {
			if a.packed[i] != b.packed[i] {
				return false
			}
		}
		return Dequantize(a).MaxAbsDiff(DequantizeParallel(pool, width, b)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
