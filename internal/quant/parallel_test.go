package quant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
	"repro/internal/threadpool"
)

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pool := threadpool.MustNew(4)
	x := tensor.RandN(rng, 2, 100, 70) // 7000 elems, pads to group multiple
	for _, cfg := range []Config{{Bits: 4, GroupSize: 64}, {Bits: 8, GroupSize: 32}, {Bits: 2, GroupSize: 16}} {
		serial, err := Quantize(x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := QuantizeParallel(pool, 4, x, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(serial.packed) != len(par.packed) {
			t.Fatalf("%+v: packed sizes differ", cfg)
		}
		for i := range serial.packed {
			if serial.packed[i] != par.packed[i] {
				t.Fatalf("%+v: packed byte %d differs", cfg, i)
			}
		}
		a := Dequantize(serial)
		b := DequantizeParallel(pool, 4, par)
		if d := a.MaxAbsDiff(b); d != 0 {
			t.Fatalf("%+v: parallel dequantize differs by %g", cfg, d)
		}
	}
}

func TestParallelFallsBackOnMisalignedGroups(t *testing.T) {
	// 3-bit codes with group 10: 30 bits per group, not byte-aligned —
	// must fall back to the serial kernel and still be correct.
	cfg := Config{Bits: 3, GroupSize: 10}
	if cfg.AlignedForParallel() {
		t.Fatal("test premise wrong: config should be misaligned")
	}
	pool := threadpool.MustNew(4)
	x := tensor.RandN(rand.New(rand.NewSource(4)), 1, 5, 13)
	par, err := QuantizeParallel(pool, 4, x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Quantize(x, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial.packed {
		if serial.packed[i] != par.packed[i] {
			t.Fatalf("fallback path differs at byte %d", i)
		}
	}
}

// TestDequantizeParallelBitsGroupMatrix pins the misaligned-config fix:
// DequantizeParallel must be bit-exact against the serial kernel for every
// Bits × GroupSize combination — aligned configs through the parallel
// kernel, misaligned ones (AlignedForParallel() == false, e.g. 3-bit codes
// with group 10) through the serial fallback — including tensors whose last
// group is padding. The dequantized shape must equal the original, so group
// padding never leaks into the output.
func TestDequantizeParallelBitsGroupMatrix(t *testing.T) {
	pool := threadpool.MustNew(4)
	rng := rand.New(rand.NewSource(17))
	for bits := 1; bits <= 8; bits++ {
		for _, group := range []int{1, 3, 7, 10, 16, 100} {
			cfg := Config{Bits: bits, GroupSize: group}
			// Sizes straddling group boundaries: exact multiples and padded
			// tails of every phase.
			for _, n := range []int{1, group, group + 1, 3*group - 1, 257} {
				if n < 1 {
					continue
				}
				x := tensor.RandN(rng, 1.5, n)
				q, err := Quantize(x, cfg)
				if err != nil {
					t.Fatalf("b%d g%d n%d: %v", bits, group, n, err)
				}
				serial := Dequantize(q)
				for _, width := range []int{1, 4} {
					par := DequantizeParallel(pool, width, q)
					if got, want := par.Numel(), n; got != want {
						t.Fatalf("b%d g%d n%d w%d: numel %d, want %d (padding leaked)",
							bits, group, n, width, got, want)
					}
					if d := serial.MaxAbsDiff(par); d != 0 {
						t.Fatalf("b%d g%d n%d w%d: parallel differs from serial by %g",
							bits, group, n, width, d)
					}
				}
			}
		}
	}
}

func TestAlignedForParallel(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{Bits: 4, GroupSize: 64}, true},
		{Config{Bits: 8, GroupSize: 1}, true},
		{Config{Bits: 4, GroupSize: 2}, true},
		{Config{Bits: 4, GroupSize: 1}, false},
		{Config{Bits: 3, GroupSize: 10}, false},
		{Config{Bits: 5, GroupSize: 8}, true},
	}
	for _, tc := range cases {
		if got := tc.cfg.AlignedForParallel(); got != tc.want {
			t.Errorf("AlignedForParallel(%+v) = %v, want %v", tc.cfg, got, tc.want)
		}
	}
}

func TestParallelInvalidConfig(t *testing.T) {
	pool := threadpool.MustNew(2)
	x := tensor.Full(1, 8)
	if _, err := QuantizeParallel(pool, 2, x, Config{Bits: 0, GroupSize: 8}); err == nil {
		t.Error("invalid config accepted")
	}
}

// Property: for random tensors and aligned configs, the parallel and serial
// kernels agree bit-exactly at every width.
func TestPropertyParallelEquivalence(t *testing.T) {
	pool := threadpool.MustNew(4)
	f := func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + int(widthRaw%6)
		n := 1 + rng.Intn(800)
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 4)
		}
		x := tensor.FromSlice(data, n)
		cfg := Config{Bits: 4, GroupSize: 32}
		a, err := Quantize(x, cfg)
		if err != nil {
			return false
		}
		b, err := QuantizeParallel(pool, width, x, cfg)
		if err != nil {
			return false
		}
		for i := range a.packed {
			if a.packed[i] != b.packed[i] {
				return false
			}
		}
		return Dequantize(a).MaxAbsDiff(DequantizeParallel(pool, width, b)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
