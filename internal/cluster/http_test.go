package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
)

func postGenerate(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/generate", strings.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestClusterHTTPRoutedGenerate: a routed request answers exactly like a
// single replica's /generate.
func TestClusterHTTPRoutedGenerate(t *testing.T) {
	be := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{3, 1, 4}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, be)
	h := NewHandler(c)

	w := postGenerate(t, h, `{"prompt":[1,2,3],"max_new_tokens":3}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, body %s", w.Code, w.Body.String())
	}
	var resp serve.GenerateResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Tokens) != 3 || resp.Tokens[0] != 3 || resp.Tokens[1] != 1 || resp.Tokens[2] != 4 {
		t.Fatalf("tokens = %v, want [3 1 4]", resp.Tokens)
	}
}

// TestClusterHTTPRetryAfterIsMax is the satellite regression: when every
// replica rejects transiently, the HTTP answer is 429 carrying the MAX
// Retry-After across tried replicas — not the first or most optimistic hint.
func TestClusterHTTPRetryAfterIsMax(t *testing.T) {
	quick := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		submitErr: &serve.OverloadError{Reason: "arena-pressure", RetryAfter: 2 * time.Second},
	}
	slow := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		submitErr: &serve.OverloadError{Reason: "tpot-budget", RetryAfter: 5 * time.Second},
	}
	c, _ := fakeCluster(t, Options{}, quick, slow)
	h := NewHandler(c)

	w := postGenerate(t, h, `{"prompt":[1,2,3]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "5" {
		t.Fatalf("Retry-After = %q, want \"5\" (the max across replicas)", got)
	}
	if quick.submitCount() != 1 || slow.submitCount() != 1 {
		t.Fatal("transient rejection must walk every routable replica before answering 429")
	}
}

// TestClusterHTTPPermanentIs422Once is the other half of the contract: a
// never-fits verdict answers 422 with no Retry-After, and the router must
// not have burned the second replica's admission queue on it.
func TestClusterHTTPPermanentIs422Once(t *testing.T) {
	perm := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		match:     3, // wins the ranking
		submitErr: &serve.OverloadError{Reason: "never-fits", Permanent: true},
	}
	spare := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{1}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, perm, spare)
	h := NewHandler(c)

	w := postGenerate(t, h, `{"prompt":[1,2,3]}`)
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422 (body %s)", w.Code, w.Body.String())
	}
	if got := w.Header().Get("Retry-After"); got != "" {
		t.Fatalf("permanent rejection carried Retry-After %q; clients must not retry it", got)
	}
	if spare.submitCount() != 0 {
		t.Fatal("permanent rejection was re-dispatched to the spare replica")
	}
	var body struct {
		Permanent bool   `json:"permanent"`
		Reason    string `json:"reason"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if !body.Permanent || body.Reason != "never-fits" {
		t.Fatalf("body = %+v, want permanent never-fits", body)
	}
}

// TestClusterHTTPDeadFleetIs503: no routable replica answers 503, mirroring
// a single shedding replica.
func TestClusterHTTPDeadFleetIs503(t *testing.T) {
	a := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 1}}
	c, _ := fakeCluster(t, Options{}, a)
	c.Kill(0)
	h := NewHandler(c)

	w := postGenerate(t, h, `{"prompt":[1]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", w.Code, w.Body.String())
	}

	// /healthz agrees.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hw := httptest.NewRecorder()
	h.ServeHTTP(hw, req)
	if hw.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503", hw.Code)
	}

	// Restart and the fleet serves again.
	c.Restart(0)
	a.mu.Lock()
	a.scripts = []script{{tokens: []int{1}, dieAfter: -1}}
	a.mu.Unlock()
	if w := postGenerate(t, h, `{"prompt":[1]}`); w.Code != http.StatusOK {
		t.Fatalf("status after restart %d, want 200", w.Code)
	}
}

// TestClusterHTTPStats: the stats document carries the router counters and
// one entry per replica.
func TestClusterHTTPStats(t *testing.T) {
	a := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{1}, dieAfter: -1}}}
	b := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}}
	c, _ := fakeCluster(t, Options{}, a, b)
	h := NewHandler(c)

	if w := postGenerate(t, h, `{"prompt":[1,2]}`); w.Code != http.StatusOK {
		t.Fatalf("generate status %d", w.Code)
	}
	c.Wait()

	req := httptest.NewRequest(http.MethodGet, "/stats", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var stats struct {
		Replicas   int              `json:"replicas"`
		Submitted  int64            `json:"submitted"`
		Completed  int64            `json:"completed"`
		PerReplica []map[string]any `json:"per_replica"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Replicas != 2 || stats.Submitted != 1 || stats.Completed != 1 {
		t.Fatalf("stats = %+v, want 2 replicas, 1 submitted, 1 completed", stats)
	}
	if len(stats.PerReplica) != 2 {
		t.Fatalf("per_replica has %d entries, want 2", len(stats.PerReplica))
	}
}

// TestClusterHTTPBadRequest: malformed and oversize bodies answer 400 without
// touching any replica.
func TestClusterHTTPBadRequest(t *testing.T) {
	a := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}}
	c, _ := fakeCluster(t, Options{}, a)
	h := NewHandler(c)

	for _, body := range []string{`{`, `{"prompt":[]}`, `{"prompt":[999999]}`, `{"nope":1}`} {
		if w := postGenerate(t, h, body); w.Code != http.StatusBadRequest {
			t.Fatalf("body %q answered %d, want 400", body, w.Code)
		}
	}
	if a.submitCount() != 0 {
		t.Fatal("malformed request reached a replica")
	}
}
