// Package cluster is the fault-tolerant multi-replica serving layer: a
// router fronting N engine replicas that scores each replica by its
// performance-model drain/prefill estimates plus prefix-cache affinity,
// consumes replica health (circuit breaker + liveness) to mark replicas
// up/degraded/down, hedges slow requests onto a second replica
// (first token wins, loser cancelled), and fails requests over from downed
// replicas mid-queue or mid-stream with the 429-vs-422 overload contract
// preserved end-to-end.
//
// The routing policy itself (ReplicaView, Policy) is pure arithmetic with no
// dependency on the live serving stack, so the discrete-event fleet
// simulator (internal/sim.Fleet) evaluates the *same* policy at hundreds of
// simulated replicas and millions of simulated requests.
package cluster

import (
	"fmt"
	"sort"
	"time"
)

// ReplicaState is the router's health classification of one replica.
type ReplicaState int

const (
	// Up replicas take traffic normally.
	Up ReplicaState = iota
	// DegradedReplica replicas still take traffic but score worse and make
	// their requests hedge-eligible immediately: the breaker reports
	// pressure, or a fault window is open.
	DegradedReplica
	// DownReplica replicas are unroutable: killed, unreachable, or shedding.
	DownReplica
)

// String returns the state's wire name.
func (s ReplicaState) String() string {
	switch s {
	case Up:
		return "up"
	case DegradedReplica:
		return "degraded"
	case DownReplica:
		return "down"
	default:
		return "unknown"
	}
}

// ReplicaView is one replica's state as scored for one request: occupancy,
// model predictions, and how much of this request's prompt the replica's
// prefix cache already holds.
type ReplicaView struct {
	State       ReplicaState
	QueueDepth  int
	ActiveSlots int
	TotalSlots  int
	// PredictedDrain is the replica's queue+batch drain estimate (zero while
	// its step-cost fit is cold).
	PredictedDrain time.Duration
	// PredictedTPOT is the replica's step latency at current occupancy.
	PredictedTPOT time.Duration
	// PrefillCost is the replica's predicted prefill stall for this
	// request's suffix (prompt minus cached prefix); zero while the
	// prefill-cost fit is cold — the policy then falls back to
	// NominalTokenCost.
	PrefillCost time.Duration
	// PromptTokens and MatchedTokens give the request's prompt length and
	// the longest prefix of it this replica has cached.
	PromptTokens  int
	MatchedTokens int
}

// SuffixTokens is how many tokens this replica would actually prefill.
func (v ReplicaView) SuffixTokens() int {
	n := v.PromptTokens - v.MatchedTokens
	if n < 0 {
		return 0
	}
	return n
}

// Policy is the scoring/hedging rule set. The score of a replica for a
// request is its predicted time-to-first-token:
//
//	score = drain + prefill(suffix) + SlotBusyCost·(queue+active)/slots
//	        [+ DegradedPenalty when the replica is degraded]
//
// where prefill(suffix) uses the replica's fitted prefill-cost coefficients
// when ready and NominalTokenCost·suffix while cold, so prefix affinity
// steers routing from the very first request. Lower is better; Down replicas
// never route.
type Policy struct {
	// NominalTokenCost prices one prefill token before the replica's own
	// prefill fit is ready. It only needs the right order of magnitude: its
	// job is making a 75%-cached prompt score below a cold one.
	NominalTokenCost time.Duration
	// SlotBusyCost is the load-balancing term: the per-request penalty for
	// each queued or active request per slot, which breaks ties toward the
	// least-loaded replica while the latency predictors are cold.
	SlotBusyCost time.Duration
	// DegradedPenalty is added to a degraded replica's score so healthy
	// replicas win unless the degraded one is dramatically better placed
	// (e.g. holds the whole prompt prefix).
	DegradedPenalty time.Duration
	// HedgeFactor triggers a hedged second attempt when the primary has not
	// produced a first token within HedgeFactor × its predicted TTFT.
	HedgeFactor float64
	// HedgeFallback is the hedge delay when the primary has no TTFT
	// prediction yet (cold fits).
	HedgeFallback time.Duration
}

// DefaultPolicy returns routing constants sized for the functional models.
func DefaultPolicy() Policy {
	return Policy{
		NominalTokenCost: 200 * time.Microsecond,
		SlotBusyCost:     2 * time.Millisecond,
		DegradedPenalty:  250 * time.Millisecond,
		HedgeFactor:      3,
		HedgeFallback:    400 * time.Millisecond,
	}
}

// Validate reports malformed policies.
func (p Policy) Validate() error {
	if p.NominalTokenCost < 0 || p.SlotBusyCost < 0 || p.DegradedPenalty < 0 || p.HedgeFallback < 0 {
		return fmt.Errorf("cluster: negative policy cost")
	}
	if p.HedgeFactor < 1 {
		return fmt.Errorf("cluster: hedge factor %g must be >= 1", p.HedgeFactor)
	}
	return nil
}

// PrefillEstimate prices the view's suffix: the replica's own fitted cost
// when available, the nominal per-token cost otherwise.
func (p Policy) PrefillEstimate(v ReplicaView) time.Duration {
	if v.PrefillCost > 0 {
		return v.PrefillCost
	}
	return time.Duration(v.SuffixTokens()) * p.NominalTokenCost
}

// Score returns the replica's routing score in seconds (lower is better) and
// whether the replica is routable at all.
func (p Policy) Score(v ReplicaView) (float64, bool) {
	if v.State == DownReplica {
		return 0, false
	}
	s := v.PredictedDrain.Seconds() + p.PrefillEstimate(v).Seconds()
	slots := v.TotalSlots
	if slots < 1 {
		slots = 1
	}
	s += p.SlotBusyCost.Seconds() * float64(v.QueueDepth+v.ActiveSlots) / float64(slots)
	if v.State == DegradedReplica {
		s += p.DegradedPenalty.Seconds()
	}
	return s, true
}

// Rank returns the routable replica indices in ascending score order (ties
// break toward the lower index, so ranking is deterministic).
func (p Policy) Rank(views []ReplicaView) []int {
	type scored struct {
		idx   int
		score float64
	}
	order := make([]scored, 0, len(views))
	for i, v := range views {
		if s, ok := p.Score(v); ok {
			order = append(order, scored{i, s})
		}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].score != order[b].score {
			return order[a].score < order[b].score
		}
		return order[a].idx < order[b].idx
	})
	out := make([]int, len(order))
	for i, s := range order {
		out[i] = s.idx
	}
	return out
}

// PredictTTFT is the primary's expected time-to-first-token under this
// policy's pricing — the baseline the hedging rule multiplies.
func (p Policy) PredictTTFT(v ReplicaView) time.Duration {
	return v.PredictedDrain + p.PrefillEstimate(v)
}

// HedgeDelay returns how long to wait for the primary's first token before
// launching a hedged attempt: zero (hedge immediately) when the primary is
// degraded, HedgeFactor × predicted TTFT when a prediction exists, and the
// fallback while the fits are cold.
func (p Policy) HedgeDelay(primary ReplicaView) time.Duration {
	if primary.State == DegradedReplica {
		return 0
	}
	if ttft := p.PredictTTFT(primary); ttft > 0 {
		return time.Duration(p.HedgeFactor * float64(ttft))
	}
	return p.HedgeFallback
}
