package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/serve"
	"repro/internal/xtrace"
)

// TokenStream is the per-attempt stream surface the router consumes: a
// token channel that closes on completion and a Wait that reports the
// terminal error. *serve.Stream satisfies it; tests inject fakes.
type TokenStream interface {
	Tokens() <-chan int
	Wait() ([]int, error)
}

// Backend is one replica's serving surface as the router sees it. The live
// implementation wraps *serve.Scheduler; unit tests script fakes to exercise
// routing edge cases (slow first tokens, mid-stream death, crafted overload
// rejections) without real engines.
type Backend interface {
	Submit(ctx context.Context, req serve.Request) (TokenStream, error)
	Health() serve.BreakerState
	RouteSnapshot() serve.RouteSnapshot
	PrefixMatchTokens(prompt []int) int
}

// schedulerBackend adapts *serve.Scheduler's concrete stream type to the
// Backend interface.
type schedulerBackend struct{ s *serve.Scheduler }

func (b schedulerBackend) Submit(ctx context.Context, req serve.Request) (TokenStream, error) {
	st, err := b.s.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return st, nil
}
func (b schedulerBackend) Health() serve.BreakerState         { return b.s.Health() }
func (b schedulerBackend) RouteSnapshot() serve.RouteSnapshot { return b.s.RouteSnapshot() }
func (b schedulerBackend) PrefixMatchTokens(prompt []int) int { return b.s.PrefixMatchTokens(prompt) }
func (b schedulerBackend) Metrics() serve.Metrics             { return b.s.Metrics() }
func (b schedulerBackend) Scheduler() *serve.Scheduler        { return b.s }

// Replica is one cluster member: a backend plus the cluster-level liveness
// flag and the per-replica fault injector the chaos harnesses drive.
type Replica struct {
	name string
	be   Backend
	inj  *faults.Injector

	mu       sync.Mutex
	down     bool
	inflight map[*attempt]context.CancelFunc
}

// NewReplica wraps a scheduler as a cluster member. inj may be nil; when
// set, SetFaultWindow opens and closes its injection window.
func NewReplica(name string, s *serve.Scheduler, inj *faults.Injector) *Replica {
	return &Replica{name: name, be: schedulerBackend{s}, inj: inj, inflight: map[*attempt]context.CancelFunc{}}
}

// NewReplicaBackend wraps an arbitrary backend (tests, remote shims).
func NewReplicaBackend(name string, be Backend, inj *faults.Injector) *Replica {
	return &Replica{name: name, be: be, inj: inj, inflight: map[*attempt]context.CancelFunc{}}
}

// Name returns the replica's display name.
func (r *Replica) Name() string { return r.name }

// register tracks an in-flight attempt so a kill can sever it.
func (r *Replica) register(a *attempt, cancel context.CancelFunc) {
	r.mu.Lock()
	r.inflight[a] = cancel
	r.mu.Unlock()
}

func (r *Replica) unregister(a *attempt) {
	r.mu.Lock()
	delete(r.inflight, a)
	r.mu.Unlock()
}

// state classifies the replica for routing: the cluster-level down flag and
// a shedding breaker are both unroutable; a degraded breaker or an open
// fault window scores worse and hedges immediately.
func (r *Replica) state() ReplicaState {
	r.mu.Lock()
	down := r.down
	r.mu.Unlock()
	if down {
		return DownReplica
	}
	switch r.be.Health() {
	case serve.Shedding:
		return DownReplica
	case serve.Degraded:
		return DegradedReplica
	}
	if r.inj.Active() {
		return DegradedReplica
	}
	return Up
}

// attempt is one dispatch of a request onto one replica.
type attempt struct {
	idx    int
	rep    *Replica
	st     TokenStream
	cancel context.CancelFunc
}

// release cancels the attempt and drops its kill registration.
func (a *attempt) release() {
	a.rep.unregister(a)
	a.cancel()
}

// Options configure the router.
type Options struct {
	// Policy is the scoring/hedging rule set; the zero value takes
	// DefaultPolicy.
	Policy Policy
	// Hedge enables hedged second attempts on slow or degraded primaries.
	Hedge bool
	// MaxAttempts bounds dispatch attempts per request across replicas
	// (0 = one attempt per replica).
	MaxAttempts int
}

// Cluster routes requests across replicas. All methods are safe for
// concurrent use.
type Cluster struct {
	replicas []*Replica
	pol      Policy
	hedge    bool
	maxTries int
	cfg      serve.Config

	tracer atomic.Pointer[xtrace.Recorder]

	submitted, completed, failed atomic.Int64
	hedges, hedgeWins, failovers atomic.Int64
	rejTransient, rejPermanent   atomic.Int64
	wg                           sync.WaitGroup
}

// New builds a router over the replicas. cfg is the shared serving
// configuration (every replica must have been built from it); the router
// uses its limits for failover resubmission and the HTTP frontend.
func New(replicas []*Replica, cfg serve.Config, opts Options) (*Cluster, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: need at least one replica")
	}
	pol := opts.Policy
	if pol == (Policy{}) {
		pol = DefaultPolicy()
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	maxTries := opts.MaxAttempts
	if maxTries <= 0 {
		maxTries = len(replicas)
	}
	return &Cluster{replicas: replicas, pol: pol, hedge: opts.Hedge, maxTries: maxTries, cfg: cfg}, nil
}

// Config returns the shared serving configuration.
func (c *Cluster) Config() serve.Config { return c.cfg }

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.replicas) }

// Replica returns member i.
func (c *Cluster) Replica(i int) *Replica { return c.replicas[i] }

// SetTracer installs (or removes, with nil) the span recorder for
// route/hedge/failover spans.
func (c *Cluster) SetTracer(r *xtrace.Recorder) { c.tracer.Store(r) }

func (c *Cluster) trace(name string, t0 time.Time, replica int) {
	if rec := c.tracer.Load(); rec != nil {
		rec.Record(name, xtrace.LaneCluster, t0, time.Since(t0), xtrace.At(-1, -1, replica))
	}
}

func (c *Cluster) traceEvent(name string, replica int) {
	if rec := c.tracer.Load(); rec != nil {
		rec.Event(name, xtrace.LaneCluster, time.Now(), xtrace.At(-1, -1, replica))
	}
}

// Kill marks replica i down and severs every in-flight attempt on it: the
// router's liveness view of a crashed process. Queued and mid-stream
// requests on the replica fail over at their next stream event.
func (c *Cluster) Kill(i int) {
	r := c.replicas[i]
	r.mu.Lock()
	already := r.down
	r.down = true
	cancels := make([]context.CancelFunc, 0, len(r.inflight))
	for _, cancel := range r.inflight {
		cancels = append(cancels, cancel)
	}
	r.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
	if !already {
		c.traceEvent(xtrace.TaskReplicaDown, i)
	}
}

// Restart marks replica i routable again.
func (c *Cluster) Restart(i int) {
	r := c.replicas[i]
	r.mu.Lock()
	was := r.down
	r.down = false
	r.mu.Unlock()
	if was {
		c.traceEvent(xtrace.TaskReplicaUp, i)
	}
}

// Down reports replica i's cluster-level liveness flag.
func (c *Cluster) Down(i int) bool {
	r := c.replicas[i]
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.down
}

// SetFaultWindow opens or closes replica i's fault-injection window (no-op
// without an injector) — the knob chaos harnesses use to synthesize
// slow-replica windows the hedging rule must beat.
func (c *Cluster) SetFaultWindow(i int, active bool) {
	c.replicas[i].inj.SetActive(active)
}

// States returns every replica's routing state.
func (c *Cluster) States() []ReplicaState {
	out := make([]ReplicaState, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = r.state()
	}
	return out
}

// views builds the per-replica scoring views for one prompt.
func (c *Cluster) views(prompt []int) []ReplicaView {
	out := make([]ReplicaView, len(c.replicas))
	for i, r := range c.replicas {
		st := r.state()
		v := ReplicaView{State: st, PromptTokens: len(prompt)}
		if st != DownReplica {
			snap := r.be.RouteSnapshot()
			v.QueueDepth = snap.QueueDepth
			v.ActiveSlots = snap.ActiveSlots
			v.TotalSlots = snap.TotalSlots
			v.PredictedDrain = snap.PredictedDrain
			v.PredictedTPOT = snap.PredictedTPOT
			v.MatchedTokens = r.be.PrefixMatchTokens(prompt)
			v.PrefillCost = snap.PredictPrefill(v.SuffixTokens())
		}
		out[i] = v
	}
	return out
}

// ReasonNoReplica is the overload reason for a cluster with no routable
// replica; the HTTP layer maps it to 503 like a shedding breaker.
const ReasonNoReplica = "no-healthy-replica"

// dispatch routes req to the best untried routable replica, walking down
// the ranking on transient overload. It returns the live attempt and the
// view it was scored with, or the terminal error:
//
//   - a Permanent *serve.OverloadError from ANY replica ends the walk
//     immediately — a never-fits verdict is deterministic across identical
//     deployments, and re-dispatching it would turn one well-formed 422
//     into N wasted admission checks (the 429-vs-422 contract);
//   - transient rejections accumulate, and when every replica has rejected,
//     the merged error carries the MAX Retry-After observed, so a client
//     backs off long enough for the slowest replica rather than re-slamming
//     the fleet at the most optimistic hint;
//   - non-overload errors (validation, closed) return as-is.
func (c *Cluster) dispatch(ctx context.Context, req serve.Request, tried map[int]bool) (*attempt, ReplicaView, error) {
	views := c.views(req.Prompt)
	order := c.pol.Rank(views)
	var merged *serve.OverloadError
	routable := 0
	for _, i := range order {
		if tried[i] {
			continue
		}
		routable++
		if len(tried) >= c.maxTries {
			break
		}
		tried[i] = true
		att, err := c.startAttempt(ctx, i, req)
		if err == nil {
			return att, views[i], nil
		}
		var ovl *serve.OverloadError
		switch {
		case errors.As(err, &ovl):
			if ovl.Permanent {
				c.rejPermanent.Add(1)
				return nil, ReplicaView{}, ovl
			}
			c.rejTransient.Add(1)
			if merged == nil {
				cp := *ovl
				merged = &cp
			} else if ovl.RetryAfter > merged.RetryAfter {
				merged.RetryAfter = ovl.RetryAfter
				merged.Reason = ovl.Reason
				merged.State = ovl.State
			}
		case errors.Is(err, serve.ErrQueueFull):
			// A full queue is transient backpressure with no drain hint.
			c.rejTransient.Add(1)
			if merged == nil {
				merged = &serve.OverloadError{Reason: "queue-full"}
			}
		default:
			return nil, ReplicaView{}, err
		}
	}
	if merged != nil {
		return nil, ReplicaView{}, merged
	}
	if routable == 0 {
		return nil, ReplicaView{}, &serve.OverloadError{Reason: ReasonNoReplica}
	}
	return nil, ReplicaView{}, &serve.OverloadError{Reason: "attempts-exhausted"}
}

// startAttempt submits req to replica i under a per-attempt context derived
// from the request context, registering the cancel so a kill severs it.
func (c *Cluster) startAttempt(ctx context.Context, i int, req serve.Request) (*attempt, error) {
	r := c.replicas[i]
	attemptCtx, cancel := context.WithCancel(ctx)
	a := &attempt{idx: i, rep: r, cancel: cancel}
	r.register(a, cancel)
	st, err := r.be.Submit(attemptCtx, req)
	if err != nil {
		a.release()
		return nil, err
	}
	// A kill racing the submit must still sever this attempt: register
	// happened before Submit, so the racing Kill either saw the cancel (and
	// called it) or the down flag was set before our state() check — either
	// way the attempt's context dies and the pump fails over.
	a.st = st
	return a, nil
}

// Stream is one routed request's merged output: tokens from whichever
// attempt won, continuation tokens after any failover.
type Stream struct {
	ch   chan int
	done chan struct{}

	mu       sync.Mutex
	tokens   []int
	err      error
	replicas []int // serving replica per winner change, in order
	hedged   bool
	hedgeWon bool
}

func newClusterStream(budget int) *Stream {
	return &Stream{ch: make(chan int, budget), done: make(chan struct{})}
}

// Tokens returns the live token channel; closed on completion.
func (st *Stream) Tokens() <-chan int { return st.ch }

// Done is closed when the request finishes.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Wait blocks for completion and returns all tokens plus the terminal error.
func (st *Stream) Wait() ([]int, error) {
	<-st.done
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int(nil), st.tokens...), st.err
}

// Replicas returns the sequence of replica indices that served tokens (one
// entry per winner change; length > 1 means the request failed over).
func (st *Stream) Replicas() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int(nil), st.replicas...)
}

// Hedged reports whether a hedge attempt launched, and whether it won.
func (st *Stream) Hedged() (launched, won bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hedged, st.hedgeWon
}

func (st *Stream) noteWinner(replica int) {
	st.mu.Lock()
	st.replicas = append(st.replicas, replica)
	st.mu.Unlock()
}

func (st *Stream) noteHedge(launched, won bool) {
	st.mu.Lock()
	if launched {
		st.hedged = true
	}
	if won {
		st.hedgeWon = true
	}
	st.mu.Unlock()
}

func (st *Stream) push(tok int) {
	st.mu.Lock()
	st.tokens = append(st.tokens, tok)
	st.mu.Unlock()
	st.ch <- tok
}

func (st *Stream) finish(err error) {
	st.mu.Lock()
	st.err = err
	st.mu.Unlock()
	close(st.ch)
	close(st.done)
}

// delivered returns a copy of the tokens pushed so far (the failover resume
// state).
func (st *Stream) delivered() []int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]int(nil), st.tokens...)
}

// Submit routes the request: score replicas, dispatch to the best, and
// manage hedging and failover in a background pump. Submit-side rejections
// (overload on every routable replica, permanent never-fits, validation)
// return synchronously with the serve layer's error types, so the HTTP
// frontend maps them exactly like a single replica would.
func (c *Cluster) Submit(ctx context.Context, req serve.Request) (*Stream, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.submitted.Add(1)
	t0 := time.Now()
	tried := make(map[int]bool, len(c.replicas))
	att, view, err := c.dispatch(ctx, req, tried)
	c.trace(xtrace.TaskRoute, t0, func() int {
		if att != nil {
			return att.idx
		}
		return -1
	}())
	if err != nil {
		c.failed.Add(1)
		return nil, err
	}
	budget := req.MaxNewTokens
	if budget == 0 {
		budget = c.cfg.DefaultNewTokens
	}
	cs := newClusterStream(budget)
	c.wg.Add(1)
	go c.pump(ctx, req, budget, cs, att, view, tried)
	return cs, nil
}

// Wait blocks until every in-flight pump goroutine has finished — the
// cluster-level drain barrier (close replica schedulers afterwards).
func (c *Cluster) Wait() { c.wg.Wait() }

// terminalErr classifies a finished attempt's error for the pump: nil means
// done, permanent overload and parent-context errors end the request, and
// everything else is failover-eligible (the replica died, stalled past its
// deadline, or rejected after a kill).
func (c *Cluster) terminalErr(ctx context.Context, err error) (final error, failover bool) {
	if err == nil {
		return nil, false
	}
	if ctx.Err() != nil {
		return ctx.Err(), false
	}
	var ovl *serve.OverloadError
	if errors.As(err, &ovl) && ovl.Permanent {
		return ovl, false
	}
	return err, true
}

// pump owns one routed request after its first successful dispatch: it
// forwards tokens to the merged stream, launches a hedged second attempt if
// the primary's first token is late (first token wins, loser cancelled),
// and fails the request over — full prompt while still tokenless
// ("mid-queue"), prompt+delivered continuation after tokens flowed — when
// the serving replica dies.
func (c *Cluster) pump(ctx context.Context, req serve.Request, budget int, cs *Stream, first *attempt, view ReplicaView, tried map[int]bool) {
	defer c.wg.Done()
	primary := first
	var hedge *attempt
	finish := func(err error) {
		if primary != nil {
			primary.release()
		}
		if hedge != nil {
			hedge.release()
		}
		if err == nil {
			c.completed.Add(1)
		} else {
			c.failed.Add(1)
		}
		cs.finish(err)
	}

	// Phase 1: no token delivered yet. Wait for the primary's first token,
	// hedging onto the next-best replica when it is late.
	var hedgeC <-chan time.Time
	if c.hedge && len(c.replicas) > 1 {
		delay := c.pol.HedgeDelay(view)
		if delay <= 0 {
			// Degraded primary: hedge immediately rather than waiting out
			// its tail (APEX's online-inference framing).
			if hedge = c.tryHedge(ctx, req, tried); hedge != nil {
				cs.noteHedge(true, false)
			}
		} else {
			t := time.NewTimer(delay)
			defer t.Stop()
			hedgeC = t.C
		}
	}
	var winner *attempt
	for winner == nil {
		var hedgeTokens <-chan int
		if hedge != nil {
			hedgeTokens = hedge.st.Tokens()
		}
		select {
		case tok, ok := <-primary.st.Tokens():
			if ok {
				winner = primary
				if hedge != nil {
					hedge.release()
					hedge = nil
				}
				cs.noteWinner(winner.idx)
				cs.push(tok)
				break
			}
			_, err := primary.st.Wait()
			primary.release()
			primary = nil
			final, failover := c.terminalErr(ctx, err)
			if !failover {
				finish(final)
				return
			}
			if hedge != nil {
				// The hedge is already running the same prompt; promote it.
				primary, hedge = hedge, nil
				continue
			}
			next, _, derr := c.redispatch(ctx, req, tried)
			if derr != nil {
				finish(preferOverload(derr, final))
				return
			}
			primary = next
		case tok, ok := <-hedgeTokens:
			if ok {
				// First token wins: the hedge becomes the serving attempt
				// and the slower primary is cancelled before it can deliver.
				winner = hedge
				hedge = nil
				primary.release()
				primary = winner
				c.hedgeWins.Add(1)
				cs.noteHedge(true, true)
				cs.noteWinner(winner.idx)
				cs.push(tok)
				break
			}
			// Hedge died without a token; drop it and keep the primary.
			hedge.release()
			hedge = nil
		case <-hedgeC:
			hedgeC = nil
			if hedge == nil {
				if hedge = c.tryHedge(ctx, req, tried); hedge != nil {
					cs.noteHedge(true, false)
				}
			}
		case <-ctx.Done():
			finish(ctx.Err())
			return
		}
	}

	// Phase 2: winner streams; on replica death, fail over with the
	// prompt+delivered continuation (generation is deterministic, so the
	// resumed replica regenerates the exact next tokens).
	for {
		select {
		case tok, ok := <-winner.st.Tokens():
			if ok {
				cs.push(tok)
				continue
			}
			_, err := winner.st.Wait()
			winner.release()
			primary = nil
			final, failover := c.terminalErr(ctx, err)
			if !failover {
				finish(final)
				return
			}
			delivered := cs.delivered()
			if len(delivered) >= budget {
				// Budget already met; the trailing error affected no output.
				finish(nil)
				return
			}
			if c.cfg.EOS >= 0 && len(delivered) > 0 && delivered[len(delivered)-1] == c.cfg.EOS {
				finish(nil)
				return
			}
			resume := make([]int, 0, len(req.Prompt)+len(delivered))
			resume = append(resume, req.Prompt...)
			resume = append(resume, delivered...)
			if len(resume) > c.cfg.MaxPromptLen {
				finish(final)
				return
			}
			next, _, derr := c.redispatch(ctx, serve.Request{Prompt: resume, MaxNewTokens: budget - len(delivered)}, tried)
			if derr != nil {
				finish(preferOverload(derr, final))
				return
			}
			winner = next
			primary = winner
			cs.noteWinner(winner.idx)
		case <-ctx.Done():
			primary = winner // finish releases it
			finish(ctx.Err())
			return
		}
	}
}

// preferOverload picks the error a failed request should surface: a
// structured overload rejection (so clients keep 429/422 semantics even
// when the original replica died) over the raw death error.
func preferOverload(dispatchErr, deathErr error) error {
	var ovl *serve.OverloadError
	if errors.As(dispatchErr, &ovl) && ovl.Reason != ReasonNoReplica && ovl.Reason != "attempts-exhausted" {
		return dispatchErr
	}
	if deathErr != nil {
		return deathErr
	}
	return dispatchErr
}

// redispatch is dispatch plus the failover accounting and span.
func (c *Cluster) redispatch(ctx context.Context, req serve.Request, tried map[int]bool) (*attempt, ReplicaView, error) {
	t0 := time.Now()
	att, view, err := c.dispatch(ctx, req, tried)
	if err != nil {
		return nil, view, err
	}
	c.failovers.Add(1)
	c.trace(xtrace.TaskFailover, t0, att.idx)
	return att, view, nil
}

// tryHedge launches a single hedged attempt on the best untried routable
// replica. Hedge submits never walk the ranking on rejection — a hedge is
// opportunistic, and burning every replica's admission queue for one slow
// request would amplify overload.
func (c *Cluster) tryHedge(ctx context.Context, req serve.Request, tried map[int]bool) *attempt {
	views := c.views(req.Prompt)
	for _, i := range c.pol.Rank(views) {
		if tried[i] {
			continue
		}
		if len(tried) >= c.maxTries {
			return nil
		}
		tried[i] = true
		att, err := c.startAttempt(ctx, i, req)
		if err != nil {
			return nil
		}
		c.hedges.Add(1)
		c.traceEvent(xtrace.TaskHedge, i)
		return att
	}
	return nil
}

// Metrics is the router's counter snapshot.
type Metrics struct {
	Replicas  int
	States    []ReplicaState
	Submitted int64
	Completed int64
	Failed    int64
	Hedges    int64
	HedgeWins int64
	Failovers int64
	// RejectedTransient counts per-replica transient overload rejections the
	// router observed (a single request may contribute several); Rejected
	// Permanent counts never-fits verdicts (each ends its request at the
	// first replica).
	RejectedTransient int64
	RejectedPermanent int64
}

// Metrics snapshots the router counters and replica states.
func (c *Cluster) Metrics() Metrics {
	return Metrics{
		Replicas:          len(c.replicas),
		States:            c.States(),
		Submitted:         c.submitted.Load(),
		Completed:         c.completed.Load(),
		Failed:            c.failed.Load(),
		Hedges:            c.hedges.Load(),
		HedgeWins:         c.hedgeWins.Load(),
		Failovers:         c.failovers.Load(),
		RejectedTransient: c.rejTransient.Load(),
		RejectedPermanent: c.rejPermanent.Load(),
	}
}
