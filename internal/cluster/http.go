package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/serve"
)

// maxRequestBody mirrors the single-replica server's body bound.
const maxRequestBody = 1 << 20

// replicaMetrics is the optional backend surface the /stats endpoint uses;
// the live scheduler backend provides it, fakes need not.
type replicaMetrics interface{ Metrics() serve.Metrics }

// NewHandler exposes the cluster over HTTP with the same wire contract as a
// single replica: POST /generate (JSON or SSE), GET /healthz, GET /stats —
// plus per-replica health and the router counters. Overload rejections keep
// their single-replica semantics end-to-end: transient pressure is 429 with
// the max Retry-After across tried replicas, a shedding fleet (or one with
// no routable replica) is 503, and a permanent never-fits verdict is 422
// exactly once, never re-dispatched.
func NewHandler(c *Cluster) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		states := c.States()
		up := 0
		names := make([]string, len(states))
		for i, st := range states {
			if st != DownReplica {
				up++
			}
			names[i] = st.String()
		}
		w.Header().Set("Content-Type", "application/json")
		if up == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		writeJSON(w, map[string]any{
			"replicas": len(states),
			"routable": up,
			"states":   names,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, statsPayload(c))
	})
	mux.HandleFunc("/generate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBody+1))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req, stream, err := serve.DecodeGenerateRequest(body, c.cfg)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		st, err := c.Submit(r.Context(), req)
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		if stream {
			streamSSE(w, st)
			return
		}
		tokens, err := st.Wait()
		var ovl *serve.OverloadError
		switch {
		case errors.As(err, &ovl) && len(tokens) == 0:
			// The request died on its replica and every failover target
			// rejected: the client gets the structured overload answer it
			// would have gotten had the router known sooner.
			writeClusterOverload(w, ovl)
			return
		case err != nil:
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, serve.GenerateResponse{Tokens: tokens})
	})
	return mux
}

// writeSubmitError maps a routed submit rejection onto the wire.
func writeSubmitError(w http.ResponseWriter, err error) {
	var ovl *serve.OverloadError
	switch {
	case errors.As(err, &ovl):
		writeClusterOverload(w, ovl)
	case errors.Is(err, serve.ErrQueueFull):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, serve.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// writeClusterOverload extends the single-replica overload mapping with the
// cluster-wide no-routable-replica case, which answers 503 like a shedding
// breaker (the whole fleet is refusing work, not one member).
func writeClusterOverload(w http.ResponseWriter, e *serve.OverloadError) {
	if e.Reason == ReasonNoReplica {
		cp := *e
		cp.Reason = "shedding"
		serve.WriteOverload(w, &cp)
		return
	}
	serve.WriteOverload(w, e)
}

// streamSSE mirrors the single-replica SSE framing over a routed stream.
func streamSSE(w http.ResponseWriter, st *Stream) {
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)
	step := 0
	for tok := range st.Tokens() {
		fmt.Fprintf(w, "data: {\"step\":%d,\"token\":%d}\n\n", step, tok)
		step++
		if flusher != nil {
			flusher.Flush()
		}
	}
	_, err := st.Wait()
	status := "ok"
	if err != nil {
		status = err.Error()
	}
	fmt.Fprintf(w, "event: done\ndata: %q\n\n", status)
	if flusher != nil {
		flusher.Flush()
	}
}

// statsPayload assembles the cluster /stats document: router counters plus
// per-replica state and (when available) each replica's serving metrics.
func statsPayload(c *Cluster) map[string]any {
	m := c.Metrics()
	states := make([]string, len(m.States))
	for i, st := range m.States {
		states[i] = st.String()
	}
	out := map[string]any{
		"replicas":           m.Replicas,
		"replica_states":     states,
		"submitted":          m.Submitted,
		"completed":          m.Completed,
		"failed":             m.Failed,
		"hedges":             m.Hedges,
		"hedge_wins":         m.HedgeWins,
		"failovers":          m.Failovers,
		"rejected_transient": m.RejectedTransient,
		"rejected_permanent": m.RejectedPermanent,
	}
	perReplica := make([]map[string]any, 0, len(c.replicas))
	for i, r := range c.replicas {
		entry := map[string]any{
			"name":  r.Name(),
			"state": m.States[i].String(),
		}
		if rm, ok := r.be.(replicaMetrics); ok && m.States[i] != DownReplica {
			sm := rm.Metrics()
			entry["queue_depth"] = sm.QueueDepth
			entry["active_slots"] = sm.ActiveSlots
			entry["tokens_generated"] = sm.TokensGenerated
			entry["breaker_state"] = sm.Breaker.String()
			entry["prefix_hit_rate"] = sm.PrefixHitRate
		}
		perReplica = append(perReplica, entry)
	}
	out["per_replica"] = perReplica
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
