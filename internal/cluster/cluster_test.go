package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
)

// --- fakes ------------------------------------------------------------------

// fakeStream is a scripted TokenStream: a producer goroutine feeds the token
// channel, honoring context cancellation, then settles the terminal error.
type fakeStream struct {
	ch   chan int
	done chan struct{}

	mu  sync.Mutex
	out []int
	err error
}

func (f *fakeStream) Tokens() <-chan int { return f.ch }

func (f *fakeStream) Wait() ([]int, error) {
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.out...), f.err
}

// script describes how one fake submission behaves.
type script struct {
	tokens     []int         // tokens to emit (all of them unless dieAfter fires)
	firstDelay time.Duration // stall before the first token
	gap        time.Duration // stall between tokens
	dieAfter   int           // emit this many tokens then fail with dieErr (-1 = never)
	dieErr     error
}

func play(ctx context.Context, sc script) *fakeStream {
	fs := &fakeStream{ch: make(chan int, 1024), done: make(chan struct{})}
	go func() {
		defer close(fs.done)
		defer close(fs.ch)
		settle := func(err error) {
			fs.mu.Lock()
			fs.err = err
			fs.mu.Unlock()
		}
		wait := func(d time.Duration) bool {
			if d <= 0 {
				select {
				case <-ctx.Done():
					return false
				default:
					return true
				}
			}
			select {
			case <-time.After(d):
				return true
			case <-ctx.Done():
				return false
			}
		}
		if !wait(sc.firstDelay) {
			settle(ctx.Err())
			return
		}
		for i, tok := range sc.tokens {
			if sc.dieAfter >= 0 && i == sc.dieAfter {
				settle(sc.dieErr)
				return
			}
			if i > 0 && !wait(sc.gap) {
				settle(ctx.Err())
				return
			}
			select {
			case fs.ch <- tok:
				fs.mu.Lock()
				fs.out = append(fs.out, tok)
				fs.mu.Unlock()
			case <-ctx.Done():
				settle(ctx.Err())
				return
			}
		}
		if sc.dieAfter >= 0 && sc.dieAfter >= len(sc.tokens) {
			settle(sc.dieErr)
			return
		}
		settle(nil)
	}()
	return fs
}

// fakeBackend scripts one replica. Each Submit consumes the next script (the
// last one repeats); submit errors short-circuit before any stream exists.
type fakeBackend struct {
	mu        sync.Mutex
	health    serve.BreakerState
	snap      serve.RouteSnapshot
	match     int
	scripts   []script
	submitErr error
	submits   int
	requests  []serve.Request
}

func (b *fakeBackend) Submit(ctx context.Context, req serve.Request) (TokenStream, error) {
	b.mu.Lock()
	b.submits++
	b.requests = append(b.requests, req)
	err := b.submitErr
	var sc script
	if len(b.scripts) > 0 {
		sc = b.scripts[0]
		if len(b.scripts) > 1 {
			b.scripts = b.scripts[1:]
		}
	} else {
		sc = script{dieAfter: -1}
	}
	b.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return play(ctx, sc), nil
}

func (b *fakeBackend) Health() serve.BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.health
}

func (b *fakeBackend) RouteSnapshot() serve.RouteSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snap
}

func (b *fakeBackend) PrefixMatchTokens(prompt []int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.match > len(prompt) {
		return len(prompt)
	}
	return b.match
}

func (b *fakeBackend) submitCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.submits
}

func (b *fakeBackend) request(i int) serve.Request {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.requests[i]
}

func testConfig() serve.Config {
	cfg := serve.DefaultConfig(64)
	cfg.AdmissionControl = false
	return cfg
}

func fakeCluster(t *testing.T, opts Options, backends ...*fakeBackend) (*Cluster, []*fakeBackend) {
	t.Helper()
	reps := make([]*Replica, len(backends))
	for i, b := range backends {
		reps[i] = NewReplicaBackend(string(rune('a'+i)), b, nil)
	}
	c, err := New(reps, testConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, backends
}

func mustTokens(t *testing.T, st *Stream, want []int) {
	t.Helper()
	got, err := st.Wait()
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens %v, want %v", len(got), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("token %d = %d, want %d (got %v)", i, got[i], want[i], got)
		}
	}
}

// --- routing ----------------------------------------------------------------

// TestClusterRoutesByAffinity: the replica holding the prompt's prefix gets
// the request even though both are equally idle.
func TestClusterRoutesByAffinity(t *testing.T) {
	cold := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{1, 2}, dieAfter: -1}}}
	warm := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, match: 6, scripts: []script{{tokens: []int{1, 2}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, cold, warm)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4, 5, 6, 7, 8}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{1, 2})
	c.Wait()
	if cold.submitCount() != 0 || warm.submitCount() != 1 {
		t.Fatalf("submits cold=%d warm=%d, want 0/1 (affinity must route to the warm replica)",
			cold.submitCount(), warm.submitCount())
	}
	if reps := st.Replicas(); len(reps) != 1 || reps[0] != 1 {
		t.Fatalf("Replicas = %v, want [1]", reps)
	}
}

// TestClusterSkipsDownReplica: a killed replica takes no traffic even when
// it would otherwise win the ranking; Restart brings it back.
func TestClusterSkipsDownReplica(t *testing.T) {
	best := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, match: 8, scripts: []script{{tokens: []int{9}, dieAfter: -1}}}
	other := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{9}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, best, other)

	c.Kill(0)
	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4, 5, 6, 7, 8}, MaxNewTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{9})
	if best.submitCount() != 0 {
		t.Fatal("killed replica received traffic")
	}

	c.Restart(0)
	st, err = c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4, 5, 6, 7, 8}, MaxNewTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{9})
	c.Wait()
	if best.submitCount() != 1 {
		t.Fatal("restarted replica took no traffic despite winning the ranking")
	}
}

// TestClusterNoRoutableReplica: a fully-down fleet rejects with the
// no-healthy-replica overload reason (the HTTP layer's 503).
func TestClusterNoRoutableReplica(t *testing.T) {
	a := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 1}}
	b := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 1}}
	c, _ := fakeCluster(t, Options{}, a, b)
	c.Kill(0)
	c.Kill(1)

	_, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1}, MaxNewTokens: 1})
	var ovl *serve.OverloadError
	if !errors.As(err, &ovl) || ovl.Reason != ReasonNoReplica {
		t.Fatalf("submit to dead fleet returned %v, want OverloadError{%s}", err, ReasonNoReplica)
	}
}

// --- overload contract (satellite: 429-vs-422) ------------------------------

// TestClusterPermanentNeverRedispatched: a permanent never-fits verdict from
// the first replica ends the request immediately — the second replica must
// not even see a submit.
func TestClusterPermanentNeverRedispatched(t *testing.T) {
	perm := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		match:     4, // wins the ranking
		submitErr: &serve.OverloadError{Reason: "never-fits", Permanent: true},
	}
	healthy := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{1}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, perm, healthy)

	_, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 1})
	var ovl *serve.OverloadError
	if !errors.As(err, &ovl) || !ovl.Permanent {
		t.Fatalf("submit returned %v, want the permanent overload error", err)
	}
	if healthy.submitCount() != 0 {
		t.Fatal("permanent rejection was re-dispatched to another replica")
	}
	if m := c.Metrics(); m.RejectedPermanent != 1 {
		t.Fatalf("RejectedPermanent = %d, want 1", m.RejectedPermanent)
	}
}

// TestClusterMergesMaxRetryAfter: when every replica rejects transiently, the
// surfaced error carries the MAX Retry-After observed, so the client backs
// off long enough for the slowest replica.
func TestClusterMergesMaxRetryAfter(t *testing.T) {
	quick := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		submitErr: &serve.OverloadError{Reason: "arena-pressure", RetryAfter: 2 * time.Second},
	}
	slow := &fakeBackend{
		snap:      serve.RouteSnapshot{TotalSlots: 4},
		submitErr: &serve.OverloadError{Reason: "tpot-budget", RetryAfter: 5 * time.Second},
	}
	c, _ := fakeCluster(t, Options{}, quick, slow)

	_, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1}, MaxNewTokens: 1})
	var ovl *serve.OverloadError
	if !errors.As(err, &ovl) {
		t.Fatalf("submit returned %v, want an overload error", err)
	}
	if ovl.Permanent {
		t.Fatal("merged transient rejection must not be permanent")
	}
	if ovl.RetryAfter != 5*time.Second {
		t.Fatalf("merged RetryAfter = %v, want the max (5s)", ovl.RetryAfter)
	}
	if m := c.Metrics(); m.RejectedTransient != 2 {
		t.Fatalf("RejectedTransient = %d, want 2", m.RejectedTransient)
	}
}

// TestClusterQueueFullWalksRanking: a full queue on the best replica is
// transient — the router walks to the next replica and serves.
func TestClusterQueueFullWalksRanking(t *testing.T) {
	full := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, match: 4, submitErr: serve.ErrQueueFull}
	open := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{7}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, full, open)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{7})
	c.Wait()
	if open.submitCount() != 1 {
		t.Fatal("router did not walk past the full queue")
	}
}

// --- hedging ----------------------------------------------------------------

// TestClusterHedgeFirstTokenWins: the primary stalls far past its predicted
// TTFT; the hedge fires, delivers first, and serves the whole request while
// the primary is cancelled.
func TestClusterHedgeFirstTokenWins(t *testing.T) {
	// The slow replica wins the ranking on affinity (full prefix cached, 1ms
	// predicted TTFT vs the cold replica's 4ms nominal prefill), so it takes
	// the request — then stalls 2s, blowing through the 3×1ms hedge trigger.
	prompt := make([]int, 20)
	slow := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4, PredictedDrain: time.Millisecond},
		match:   20,
		scripts: []script{{tokens: []int{100, 101}, firstDelay: 2 * time.Second, dieAfter: -1}},
	}
	fast := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		scripts: []script{{tokens: []int{1, 2, 3}, dieAfter: -1}},
	}
	c, _ := fakeCluster(t, Options{Hedge: true}, slow, fast)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: 3})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{1, 2, 3})
	c.Wait()
	launched, won := st.Hedged()
	if !launched || !won {
		t.Fatalf("Hedged() = (%v, %v), want (true, true)", launched, won)
	}
	if reps := st.Replicas(); len(reps) != 1 || reps[0] != 1 {
		t.Fatalf("Replicas = %v, want [1] (the hedge)", reps)
	}
	m := c.Metrics()
	if m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("Hedges=%d HedgeWins=%d, want 1/1", m.Hedges, m.HedgeWins)
	}
}

// TestClusterHedgeLosesToPrimary: the primary answers within its predicted
// TTFT — no hedge launches, and the fleet does no duplicate work.
func TestClusterHedgeLosesToPrimary(t *testing.T) {
	// The primary wins the ranking on affinity with no TTFT prediction, so
	// the hedge trigger is the 400ms cold fallback — far beyond its instant
	// first token.
	prim := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		match:   4,
		scripts: []script{{tokens: []int{5, 6}, dieAfter: -1}},
	}
	spare := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}}
	c, _ := fakeCluster(t, Options{Hedge: true}, prim, spare)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{5, 6})
	c.Wait()
	if launched, _ := st.Hedged(); launched {
		t.Fatal("hedge launched although the primary answered in time")
	}
	if spare.submitCount() != 0 {
		t.Fatal("spare replica saw duplicate work")
	}
}

// TestClusterHedgesDegradedImmediately: a degraded primary hedges with no
// delay (HedgeDelay 0) — the request races both replicas from the start.
func TestClusterHedgesDegradedImmediately(t *testing.T) {
	degraded := &fakeBackend{
		health:  serve.Degraded,
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		match:   4, // affinity big enough to out-score the degraded penalty
		scripts: []script{{tokens: []int{1}, firstDelay: time.Second, dieAfter: -1}},
	}
	healthy := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		scripts: []script{{tokens: []int{2}, dieAfter: -1}},
	}
	pol := DefaultPolicy()
	pol.DegradedPenalty = 0 // force the degraded replica to win the ranking
	c, _ := fakeCluster(t, Options{Hedge: true, Policy: pol}, degraded, healthy)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{2})
	c.Wait()
	if launched, won := st.Hedged(); !launched || !won {
		t.Fatalf("Hedged() = (%v, %v), want immediate hedge win", launched, won)
	}
	if degraded.submitCount() != 1 || healthy.submitCount() != 1 {
		t.Fatalf("submits degraded=%d healthy=%d, want 1/1 (raced)", degraded.submitCount(), healthy.submitCount())
	}
}

// --- failover ---------------------------------------------------------------

// TestClusterMidQueueFailover: the primary dies before any token; the router
// re-dispatches the full prompt and the client sees an uninterrupted stream.
func TestClusterMidQueueFailover(t *testing.T) {
	dying := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		match:   4,
		scripts: []script{{dieAfter: 0, dieErr: errors.New("replica crashed")}},
	}
	backup := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{1, 2}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, dying, backup)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{1, 2})
	c.Wait()
	if got := backup.request(0).Prompt; len(got) != 4 {
		t.Fatalf("failover re-dispatched prompt of %d tokens, want the full 4", len(got))
	}
	if m := c.Metrics(); m.Failovers != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers)
	}
	if reps := st.Replicas(); len(reps) != 1 || reps[0] != 1 {
		t.Fatalf("Replicas = %v, want [1]", reps)
	}
}

// TestClusterMidStreamFailoverResumes: the primary dies after 2 of 5 tokens;
// the router resumes on the backup with prompt+delivered and the remaining
// budget, and the merged stream is seamless.
func TestClusterMidStreamFailoverResumes(t *testing.T) {
	dying := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		match:   4,
		scripts: []script{{tokens: []int{10, 11, 99}, dieAfter: 2, dieErr: errors.New("replica crashed")}},
	}
	backup := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{12, 13, 14}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, dying, backup)

	prompt := []int{1, 2, 3, 4}
	st, err := c.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: 5})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{10, 11, 12, 13, 14})
	c.Wait()

	resumed := backup.request(0)
	wantPrompt := []int{1, 2, 3, 4, 10, 11}
	if len(resumed.Prompt) != len(wantPrompt) {
		t.Fatalf("resume prompt %v, want %v", resumed.Prompt, wantPrompt)
	}
	for i := range wantPrompt {
		if resumed.Prompt[i] != wantPrompt[i] {
			t.Fatalf("resume prompt %v, want %v", resumed.Prompt, wantPrompt)
		}
	}
	if resumed.MaxNewTokens != 3 {
		t.Fatalf("resume budget = %d, want 3 (5 asked, 2 delivered)", resumed.MaxNewTokens)
	}
	if reps := st.Replicas(); len(reps) != 2 || reps[0] != 0 || reps[1] != 1 {
		t.Fatalf("Replicas = %v, want [0 1]", reps)
	}
}

// TestClusterKillFailsOverInflight: Kill severs a stream mid-flight via its
// attempt context and the request completes on the surviving replica.
func TestClusterKillFailsOverInflight(t *testing.T) {
	victim := &fakeBackend{
		snap:  serve.RouteSnapshot{TotalSlots: 4},
		match: 4,
		// Emits one token then stalls forever; only the kill's cancel ends it.
		scripts: []script{{tokens: []int{10, 99}, gap: time.Hour, dieAfter: -1}},
	}
	backup := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}, scripts: []script{{tokens: []int{11}, dieAfter: -1}}}
	c, _ := fakeCluster(t, Options{}, victim, backup)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first token so the kill lands mid-stream.
	select {
	case <-st.Tokens():
	case <-time.After(5 * time.Second):
		t.Fatal("no first token")
	}
	c.Kill(0)
	mustTokens(t, st, []int{10, 11})
	c.Wait()
	if reps := st.Replicas(); len(reps) != 2 || reps[1] != 1 {
		t.Fatalf("Replicas = %v, want failover to replica 1", reps)
	}
}

// TestClusterFailoverStopsAtBudget: when the primary dies with the budget
// already delivered, the request completes cleanly with no re-dispatch.
func TestClusterFailoverStopsAtBudget(t *testing.T) {
	dying := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		match:   4,
		scripts: []script{{tokens: []int{10, 11}, dieAfter: 2, dieErr: errors.New("late crash")}},
	}
	spare := &fakeBackend{snap: serve.RouteSnapshot{TotalSlots: 4}}
	c, _ := fakeCluster(t, Options{}, dying, spare)

	st, err := c.Submit(context.Background(), serve.Request{Prompt: []int{1, 2, 3, 4}, MaxNewTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	mustTokens(t, st, []int{10, 11})
	c.Wait()
	if spare.submitCount() != 0 {
		t.Fatal("re-dispatched a request whose budget was already met")
	}
}

// TestClusterCancelPropagates: cancelling the request context ends the routed
// stream with ctx.Err and no failover.
func TestClusterCancelPropagates(t *testing.T) {
	stall := &fakeBackend{
		snap:    serve.RouteSnapshot{TotalSlots: 4},
		scripts: []script{{tokens: []int{1}, firstDelay: time.Hour, dieAfter: -1}},
	}
	c, _ := fakeCluster(t, Options{}, stall)

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.Submit(ctx, serve.Request{Prompt: []int{1}, MaxNewTokens: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	_, werr := st.Wait()
	if !errors.Is(werr, context.Canceled) {
		t.Fatalf("Wait after cancel returned %v, want context.Canceled", werr)
	}
	c.Wait()
	if m := c.Metrics(); m.Failovers != 0 {
		t.Fatal("client cancellation must not trigger failover")
	}
}
