package cluster

import (
	"testing"
	"time"
)

// TestPolicyScorePrefersAffinity: with equal load and health, the replica
// holding a cached prefix of the prompt must score (and rank) strictly better
// — prefix affinity is the whole point of scoring prefill by suffix length.
func TestPolicyScorePrefersAffinity(t *testing.T) {
	p := DefaultPolicy()
	cold := ReplicaView{State: Up, TotalSlots: 4, PromptTokens: 100}
	warm := cold
	warm.MatchedTokens = 75

	sc, okC := p.Score(cold)
	sw, okW := p.Score(warm)
	if !okC || !okW {
		t.Fatal("both Up replicas must be routable")
	}
	if sw >= sc {
		t.Fatalf("warm replica scored %g, cold %g; cached prefix must win", sw, sc)
	}
	if got := p.Rank([]ReplicaView{cold, warm}); len(got) != 2 || got[0] != 1 {
		t.Fatalf("Rank = %v, want warm replica (index 1) first", got)
	}
}

// TestPolicyScoreFittedPrefillWins: a replica that published a fitted prefill
// cost is priced by it, not the nominal fallback.
func TestPolicyScoreFittedPrefillWins(t *testing.T) {
	p := DefaultPolicy()
	v := ReplicaView{State: Up, TotalSlots: 1, PromptTokens: 50, PrefillCost: 7 * time.Millisecond}
	if got := p.PrefillEstimate(v); got != 7*time.Millisecond {
		t.Fatalf("PrefillEstimate = %v, want the fitted 7ms", got)
	}
	v.PrefillCost = 0
	if got := p.PrefillEstimate(v); got != 50*p.NominalTokenCost {
		t.Fatalf("cold PrefillEstimate = %v, want 50×nominal", got)
	}
}

// TestPolicyRankSkipsDownAndPenalizesDegraded: Down replicas never appear in
// the ranking; a degraded replica ranks behind an otherwise-identical healthy
// one but stays routable.
func TestPolicyRankSkipsDownAndPenalizesDegraded(t *testing.T) {
	p := DefaultPolicy()
	views := []ReplicaView{
		{State: DegradedReplica, TotalSlots: 4, PromptTokens: 10},
		{State: DownReplica, TotalSlots: 4, PromptTokens: 10},
		{State: Up, TotalSlots: 4, PromptTokens: 10},
	}
	got := p.Rank(views)
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("Rank = %v, want [2 0] (healthy first, degraded second, down absent)", got)
	}
	if _, ok := p.Score(views[1]); ok {
		t.Fatal("Down replica must be unroutable")
	}
}

// TestPolicyLoadBalancesWhenCold: with no predictions and no prefix state,
// the busier replica loses — SlotBusyCost is the tiebreaker that spreads a
// cold fleet.
func TestPolicyLoadBalancesWhenCold(t *testing.T) {
	p := DefaultPolicy()
	idle := ReplicaView{State: Up, TotalSlots: 4}
	busy := ReplicaView{State: Up, TotalSlots: 4, QueueDepth: 3, ActiveSlots: 4}
	if got := p.Rank([]ReplicaView{busy, idle}); got[0] != 1 {
		t.Fatalf("Rank = %v, want idle replica first", got)
	}
}

// TestPolicyRankDeterministicTies: equal scores break toward the lower index
// so routing is reproducible.
func TestPolicyRankDeterministicTies(t *testing.T) {
	p := DefaultPolicy()
	same := ReplicaView{State: Up, TotalSlots: 2, PromptTokens: 5}
	for i := 0; i < 8; i++ {
		if got := p.Rank([]ReplicaView{same, same, same}); got[0] != 0 || got[1] != 1 || got[2] != 2 {
			t.Fatalf("Rank = %v, want [0 1 2]", got)
		}
	}
}

// TestPolicyHedgeDelay pins the three hedge regimes: degraded primaries hedge
// immediately, predicted primaries hedge at HedgeFactor × TTFT, cold
// primaries hedge at the fallback.
func TestPolicyHedgeDelay(t *testing.T) {
	p := DefaultPolicy()
	if got := p.HedgeDelay(ReplicaView{State: DegradedReplica}); got != 0 {
		t.Fatalf("degraded hedge delay = %v, want 0", got)
	}
	v := ReplicaView{State: Up, PredictedDrain: 100 * time.Millisecond, PromptTokens: 0}
	if got := p.HedgeDelay(v); got != 300*time.Millisecond {
		t.Fatalf("predicted hedge delay = %v, want 3×100ms", got)
	}
	if got := p.HedgeDelay(ReplicaView{State: Up}); got != p.HedgeFallback {
		t.Fatalf("cold hedge delay = %v, want fallback %v", got, p.HedgeFallback)
	}
}

// TestPolicyValidate rejects malformed rule sets.
func TestPolicyValidate(t *testing.T) {
	good := DefaultPolicy()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.HedgeFactor = 0.5
	if bad.Validate() == nil {
		t.Fatal("HedgeFactor < 1 must be rejected")
	}
	bad = good
	bad.DegradedPenalty = -time.Second
	if bad.Validate() == nil {
		t.Fatal("negative cost must be rejected")
	}
}

// TestSuffixTokensClamps: a stale prefix match longer than the prompt must
// not produce a negative suffix.
func TestSuffixTokensClamps(t *testing.T) {
	v := ReplicaView{PromptTokens: 4, MatchedTokens: 9}
	if got := v.SuffixTokens(); got != 0 {
		t.Fatalf("SuffixTokens = %d, want 0", got)
	}
}
