package cluster

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	rt "repro/internal/runtime"
	"repro/internal/serve"
)

const modelSeed = 42

// liveCluster builds n replicas over independent engines initialized from the
// same model seed — the in-process stand-in for n identical deployments.
func liveCluster(t *testing.T, n int, cfg serve.Config, opts Options) (*Cluster, []*serve.Scheduler) {
	t.Helper()
	reps := make([]*Replica, n)
	scheds := make([]*serve.Scheduler, n)
	for i := 0; i < n; i++ {
		m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
		if err != nil {
			t.Fatal(err)
		}
		eng, err := rt.NewEngine(m, rt.Policy{IntraOp: 1}, 1<<30, nil)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serve.New(eng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		scheds[i] = s
		reps[i] = NewReplica(string(rune('a'+i)), s, nil)
	}
	t.Cleanup(func() {
		for _, s := range scheds {
			s.Close()
		}
	})
	c, err := New(reps, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, scheds
}

// soloReference generates the prompt on a dedicated offline engine: the
// token-exactness baseline for routed output.
func soloReference(t *testing.T, prompt []int, genLen int) []int {
	t.Helper()
	m, err := model.NewModel(rand.New(rand.NewSource(modelSeed)), model.Tiny())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := rt.NewEngine(m, rt.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := eng.Generate(context.Background(), [][]int{prompt}, genLen)
	if err != nil {
		t.Fatal(err)
	}
	return out[0]
}

// TestClusterDifferentialTokenExact is the acceptance differential: routed
// generation — whatever replica the policy picks — must be token-exact
// against solo generation of the same prompt.
func TestClusterDifferentialTokenExact(t *testing.T) {
	vocab := model.Tiny().Vocab
	cfg := serve.DefaultConfig(vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 32
	cfg.PrefixCacheBytes = 1 << 20 // exercise the affinity path too

	c, _ := liveCluster(t, 3, cfg, Options{})

	rng := rand.New(rand.NewSource(7))
	shared := make([]int, 24)
	for i := range shared {
		shared[i] = rng.Intn(vocab)
	}
	type job struct {
		prompt []int
		genLen int
		st     *Stream
	}
	var jobs []job
	for i := 0; i < 12; i++ {
		var prompt []int
		if i%2 == 0 {
			// Shared-prefix family: exercises prefix-affinity routing.
			prompt = append(append([]int{}, shared...), rng.Intn(vocab), rng.Intn(vocab))
		} else {
			prompt = make([]int, 8+rng.Intn(16))
			for j := range prompt {
				prompt[j] = rng.Intn(vocab)
			}
		}
		jobs = append(jobs, job{prompt: prompt, genLen: 6 + rng.Intn(6)})
	}
	for i := range jobs {
		st, err := c.Submit(context.Background(), serve.Request{Prompt: jobs[i].prompt, MaxNewTokens: jobs[i].genLen})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs[i].st = st
	}
	for i := range jobs {
		got, err := jobs[i].st.Wait()
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		want := soloReference(t, jobs[i].prompt, jobs[i].genLen)
		if len(got) != len(want) {
			t.Fatalf("request %d: %d tokens, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("request %d diverged at token %d: routed %v vs solo %v (served by %v)",
					i, j, got, want, jobs[i].st.Replicas())
			}
		}
	}
	c.Wait()
}

// TestClusterFailoverContinuationTokenExact kills the serving replica
// mid-stream and checks the failover continuation is still token-exact: the
// resumed replica prefills prompt+delivered and regenerates the identical
// suffix.
func TestClusterFailoverContinuationTokenExact(t *testing.T) {
	vocab := model.Tiny().Vocab
	cfg := serve.DefaultConfig(vocab)
	cfg.Slots = 2
	// Streams are budget-buffered, so generation runs ahead of the consumer;
	// the budget must be long enough that the kill below lands before the
	// tiny model finishes every step, or there is nothing left to fail over.
	const genLen = 192
	cfg.MaxNewTokens = genLen
	c, _ := liveCluster(t, 2, cfg, Options{})

	prompt := []int{3, 1, 4, 1, 5, 9, 2, 6}
	st, err := c.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: genLen})
	if err != nil {
		t.Fatal(err)
	}
	// Let a few tokens flow, then kill whoever is serving.
	got := make([]int, 0, genLen)
	for tok := range st.Tokens() {
		got = append(got, tok)
		if len(got) == 3 {
			c.Kill(st.Replicas()[0])
		}
	}
	all, werr := st.Wait()
	if werr != nil {
		t.Fatalf("Wait: %v (replicas %v)", werr, st.Replicas())
	}
	want := soloReference(t, prompt, genLen)
	if len(all) != len(want) {
		t.Fatalf("got %d tokens, want %d (replicas %v)", len(all), len(want), st.Replicas())
	}
	for i := range all {
		if all[i] != want[i] {
			t.Fatalf("failover continuation diverged at token %d: %v vs %v", i, all, want)
		}
	}
	if reps := st.Replicas(); len(reps) < 2 {
		t.Fatalf("Replicas = %v, want a failover to a second replica", reps)
	}
	c.Wait()
}

// TestClusterChaosSoak is the satellite chaos gate: Poisson-ish load against
// three live replicas while one is repeatedly killed and restarted. Every
// request must end with a definite status — tokens or a structured error,
// never a silent drop — and the drain must leak no goroutines.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	vocab := model.Tiny().Vocab
	cfg := serve.DefaultConfig(vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 16
	cfg.DefaultNewTokens = 6
	cfg.MaxNewTokens = 16

	c, _ := liveCluster(t, 3, cfg, Options{Hedge: true})
	baseline := runtime.NumGoroutine()

	// Chaos: kill replica 0, let it stay dead a while, restart, repeat.
	stopChaos := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChaos:
				c.Restart(0)
				return
			case <-time.After(30 * time.Millisecond):
			}
			if i%2 == 0 {
				c.Kill(0)
			} else {
				c.Restart(0)
			}
		}
	}()

	const n = 60
	rng := rand.New(rand.NewSource(11))
	var mu sync.Mutex
	completed, rejected := 0, 0
	var firstBad error
	var reqWG sync.WaitGroup
	for i := 0; i < n; i++ {
		prompt := make([]int, 4+rng.Intn(8))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		genLen := 3 + rng.Intn(6)
		reqWG.Add(1)
		go func(prompt []int, genLen int) {
			defer reqWG.Done()
			st, err := c.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: genLen})
			if err == nil {
				_, err = st.Wait()
				if err == nil {
					mu.Lock()
					completed++
					mu.Unlock()
					return
				}
			}
			var ovl *serve.OverloadError
			switch {
			case errors.As(err, &ovl), errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				mu.Lock()
				if firstBad == nil {
					firstBad = err
				}
				mu.Unlock()
			}
		}(prompt, genLen)
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(5*time.Millisecond)))
	}
	reqWG.Wait()
	close(stopChaos)
	chaosWG.Wait()
	c.Wait()

	if firstBad != nil {
		t.Fatalf("request ended without a definite status: %v", firstBad)
	}
	if completed+rejected != n {
		t.Fatalf("accounted %d of %d requests", completed+rejected, n)
	}
	if completed == 0 {
		t.Fatal("chaos soak completed zero requests; two healthy replicas should have carried the load")
	}
	t.Logf("chaos soak: %d completed, %d rejected-with-status, metrics %+v", completed, rejected, c.Metrics())

	// Goroutine-leak-free drain: after Wait, only the scheduler loops (part
	// of baseline) remain. Allow slack for runtime background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
