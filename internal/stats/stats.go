// Package stats provides the small numeric and formatting helpers the
// experiment generators share: aligned text tables (the tool output mirrors
// the paper's tables) and aggregate statistics (means, geometric means,
// speedup summaries).
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, cells ...interface{}) {
	parts := strings.Split(fmt.Sprintf(format, cells...), "\t")
	t.AddRow(parts...)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean; all inputs must be positive
// (non-positive values yield NaN to surface the bug).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Max returns the maximum, or 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum, or 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// SpeedupSummary aggregates pairwise ratios the way the paper reports them:
// "up to X× (Y× on average)".
type SpeedupSummary struct {
	Max  float64
	Mean float64
	Geo  float64
	N    int
}

// Speedups computes the summary of a/b element-wise.
func Speedups(a, b []float64) (SpeedupSummary, error) {
	if len(a) != len(b) || len(a) == 0 {
		return SpeedupSummary{}, fmt.Errorf("stats: speedup inputs must be equal-length and non-empty (%d, %d)", len(a), len(b))
	}
	ratios := make([]float64, len(a))
	for i := range a {
		if b[i] <= 0 {
			return SpeedupSummary{}, fmt.Errorf("stats: non-positive baseline %g at %d", b[i], i)
		}
		ratios[i] = a[i] / b[i]
	}
	return SpeedupSummary{Max: Max(ratios), Mean: Mean(ratios), Geo: GeoMean(ratios), N: len(ratios)}, nil
}

// String renders the paper-style summary.
func (s SpeedupSummary) String() string {
	return fmt.Sprintf("up to %.2fx (%.2fx on average, n=%d)", s.Max, s.Mean, s.N)
}

// GB formats bytes as gigabytes with two decimals (decimal GB, as the paper
// uses for I/O volumes).
func GB(bytes float64) string { return fmt.Sprintf("%.2f GB", bytes/1e9) }

// GiB formats bytes as binary gigabytes (the paper's memory columns).
func GiB(bytes int64) string { return fmt.Sprintf("%.0f GB", float64(bytes)/(1<<30)) }
