package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRowf("beta\t%d", 22)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[3], "22") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tab.Rows())
	}
	// Columns align: every line has the same prefix width for column two.
	idx0 := strings.Index(lines[0], "value")
	idx3 := strings.Index(lines[3], "22")
	if idx0 != idx3 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx0, idx3, out)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("only")
	if got := tab.String(); !strings.Contains(got, "only") {
		t.Errorf("short row lost: %s", got)
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if m := Mean(xs); m != 7.0/3 {
		t.Errorf("Mean = %g", m)
	}
	if g := GeoMean(xs); math.Abs(g-2) > 1e-12 {
		t.Errorf("GeoMean = %g, want 2", g)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means not zero")
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Errorf("Max/Min wrong: %g %g", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty extremes not zero")
	}
}

func TestSpeedups(t *testing.T) {
	s, err := Speedups([]float64{2, 9}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Max != 3 || s.Mean != 2.5 || s.N != 2 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Geo-math.Sqrt(6)) > 1e-12 {
		t.Errorf("Geo = %g", s.Geo)
	}
	if !strings.Contains(s.String(), "up to 3.00x") {
		t.Errorf("String = %q", s.String())
	}
	if _, err := Speedups([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Speedups([]float64{1}, []float64{0}); err == nil {
		t.Error("zero baseline accepted")
	}
	if _, err := Speedups(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestByteFormatting(t *testing.T) {
	if got := GB(16.32e9); got != "16.32 GB" {
		t.Errorf("GB = %q", got)
	}
	if got := GiB(40 << 30); got != "40 GB" {
		t.Errorf("GiB = %q", got)
	}
}
