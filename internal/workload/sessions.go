package workload

import (
	"math/rand"
	"time"
)

// chatPrefixFamilies is how many distinct shared system prompts the chat
// generator draws from: sessions of the same family start with identical
// prefix tokens, so the prefix cache sees cross-session sharing as well as
// the intra-session turn-over-turn extension.
const chatPrefixFamilies = 4

// chatFamilyPrefix returns family f's deterministic system-prompt tokens.
func chatFamilyPrefix(f, length, vocab int) []int {
	out := make([]int, length)
	for i := range out {
		out[i] = (f*31 + i*7 + 3) % vocab
	}
	return out
}

// Chat generates multi-turn chat sessions: sessions arrive as a Poisson
// process, draw one of a few shared system-prompt families, and then run
// 2–4 turns separated by exponential think times. Turn k's prompt is turn
// k-1's prompt plus the new user tokens, so consecutive turns (and sessions
// of the same family) are exactly the shared-prefix shape the PrefixStore
// accelerates. Sessions end early rather than exceed MaxPromptLen.
func Chat(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	// ~3 turns per session on average; space session starts so the requested
	// N lands inside the horizon.
	sessionGap := s.Horizon.Seconds() / (float64(s.N) / 3)
	thinkGap := 3 * s.meanGap().Seconds()
	prefixLen := s.MinPromptLen + 2
	if prefixLen > s.MaxPromptLen/2 {
		prefixLen = s.MaxPromptLen / 2
	}
	if prefixLen < 1 {
		prefixLen = 1
	}
	var out Trace
	sessionStart := 0.0
	session := s.SessionBase
	for len(out) < s.N {
		sessionStart += rng.ExpFloat64() * sessionGap
		family := rng.Intn(chatPrefixFamilies)
		prompt := append([]int(nil), chatFamilyPrefix(family, prefixLen, s.Vocab)...)
		turns := 2 + rng.Intn(3)
		at := sessionStart
		for turn := 0; turn < turns && len(out) < s.N; turn++ {
			// The user's new tokens for this turn extend the running prompt.
			userLen := 2 + rng.Intn(4)
			if len(prompt)+userLen > s.MaxPromptLen {
				break
			}
			for i := 0; i < userLen; i++ {
				prompt = append(prompt, rng.Intn(s.Vocab))
			}
			if turn > 0 {
				at += rng.ExpFloat64() * thinkGap
			}
			out = append(out, Request{
				At:           time.Duration(at * float64(time.Second)),
				Tenant:       s.Tenant,
				Session:      session,
				Turn:         turn,
				Prompt:       append([]int(nil), prompt...),
				MaxNewTokens: randBudget(rng, s),
				Kind:         "chat",
			})
		}
		session++
	}
	// Think times can push a session's later turns past the next session's
	// start; the canonical trace is time-ordered.
	return Merge(out)
}

// Summarize generates long-context summarization traffic: Poisson arrivals
// whose prompts sit in the top ~30% of the allowed length and whose output
// budgets hug the minimum — maximal prefill work per token generated, the
// workload that exposes prefill-cost mispredictions.
func Summarize(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	minLen := s.MaxPromptLen * 7 / 10
	if minLen < s.MinPromptLen {
		minLen = s.MinPromptLen
	}
	maxBudget := s.MinNewTokens + 2
	if maxBudget > s.MaxNewTokens {
		maxBudget = s.MaxNewTokens
	}
	gap := s.meanGap().Seconds()
	var out Trace
	at := 0.0
	for len(out) < s.N {
		at += rng.ExpFloat64() * gap
		out = append(out, Request{
			At:           time.Duration(at * float64(time.Second)),
			Tenant:       s.Tenant,
			Session:      -1,
			Prompt:       randPrompt(rng, s, minLen, s.MaxPromptLen),
			MaxNewTokens: s.MinNewTokens + rng.Intn(maxBudget-s.MinNewTokens+1),
			Kind:         "summarize",
		})
	}
	return out
}

// BatchOffline generates a batch job: every request lands uniformly inside
// the first tenth of the horizon (a queue-flood, not a stream) with output
// budgets in the top half of the allowed range. This is the workload that
// backfills idle slots under fair-share scheduling and starves interactive
// tenants without it.
func BatchOffline(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	window := s.Horizon / 10
	midBudget := (s.MinNewTokens + s.MaxNewTokens) / 2
	var out Trace
	for len(out) < s.N {
		budget := midBudget
		if s.MaxNewTokens > midBudget {
			budget += rng.Intn(s.MaxNewTokens - midBudget + 1)
		}
		out = append(out, Request{
			At:           time.Duration(rng.Int63n(int64(window) + 1)),
			Tenant:       s.Tenant,
			Session:      -1,
			Prompt:       randPrompt(rng, s, s.MinPromptLen, s.MaxPromptLen),
			MaxNewTokens: budget,
			Kind:         "batch",
		})
	}
	return Merge(out)
}

// TenantStream is one tenant's generator assignment in a multi-tenant mix.
type TenantStream struct {
	Tenant string
	Kind   string
	Spec   Spec
}

// MultiTenant generates each stream with its own spec (tagged with the
// stream's tenant, chat sessions renumbered per stream so they never
// collide) and merges the results by arrival time — the standing multi-tenant
// mix the fair-share scheduler is tested against.
func MultiTenant(streams ...TenantStream) (Trace, error) {
	var parts []Trace
	for i, st := range streams {
		spec := st.Spec
		spec.Tenant = st.Tenant
		if spec.SessionBase == 0 {
			spec.SessionBase = (i + 1) * 1_000_000
		}
		tr, err := Generate(st.Kind, spec)
		if err != nil {
			return nil, err
		}
		parts = append(parts, tr)
	}
	return Merge(parts...), nil
}
