package workload

import (
	"strings"
	"testing"
	"time"
)

func testSpec(seed int64) Spec {
	return Spec{Seed: seed, N: 200, Vocab: 128}
}

// Every generator must be a pure function of its spec: same seed, same bytes.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			a, err := Generate(kind, testSpec(7))
			if err != nil {
				t.Fatalf("Generate(%q): %v", kind, err)
			}
			b, err := Generate(kind, testSpec(7))
			if err != nil {
				t.Fatalf("Generate(%q) second run: %v", kind, err)
			}
			if a.Encode() != b.Encode() {
				t.Fatalf("%s: same seed produced different traces", kind)
			}
			c, err := Generate(kind, testSpec(8))
			if err != nil {
				t.Fatalf("Generate(%q) seed 8: %v", kind, err)
			}
			if a.Encode() == c.Encode() {
				t.Fatalf("%s: different seeds produced identical traces", kind)
			}
		})
	}
}

// Structural invariants every generator must hold: exact count, sorted
// arrivals, in-bounds prompt lengths / budgets / token values.
func TestGeneratorBounds(t *testing.T) {
	spec := Spec{Seed: 11, N: 300, Vocab: 64, MinPromptLen: 3, MaxPromptLen: 20,
		MinNewTokens: 2, MaxNewTokens: 9}
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			tr, err := Generate(kind, spec)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(tr) != spec.N {
				t.Fatalf("got %d requests, want %d", len(tr), spec.N)
			}
			prev := time.Duration(-1)
			for i, r := range tr {
				if r.At < prev {
					t.Fatalf("request %d arrives at %v before predecessor %v", i, r.At, prev)
				}
				prev = r.At
				if len(r.Prompt) < 1 || len(r.Prompt) > spec.MaxPromptLen {
					t.Fatalf("request %d prompt length %d outside [1, %d]", i, len(r.Prompt), spec.MaxPromptLen)
				}
				if kind != "chat" && len(r.Prompt) < spec.MinPromptLen {
					t.Fatalf("request %d prompt length %d below min %d", i, len(r.Prompt), spec.MinPromptLen)
				}
				if r.MaxNewTokens < spec.MinNewTokens || r.MaxNewTokens > spec.MaxNewTokens {
					t.Fatalf("request %d budget %d outside [%d, %d]", i, r.MaxNewTokens, spec.MinNewTokens, spec.MaxNewTokens)
				}
				for _, tok := range r.Prompt {
					if tok < 0 || tok >= spec.Vocab {
						t.Fatalf("request %d token %d outside vocab %d", i, tok, spec.Vocab)
					}
				}
				if r.Kind == "" {
					t.Fatalf("request %d has no kind", i)
				}
			}
		})
	}
}

// Chat turns must extend the previous turn's prompt exactly — that is the
// shape the PrefixStore accelerates, and the differential test depends on it.
func TestChatTurnsExtendPrefix(t *testing.T) {
	tr := Chat(Spec{Seed: 3, N: 150, Vocab: 128})
	bySession := map[int][]Request{}
	for _, r := range tr {
		if r.Session < 0 {
			t.Fatalf("chat request missing session id: %+v", r)
		}
		bySession[r.Session] = append(bySession[r.Session], r)
	}
	if len(bySession) < 2 {
		t.Fatalf("expected multiple sessions, got %d", len(bySession))
	}
	multiTurn := 0
	for sess, reqs := range bySession {
		for i := 1; i < len(reqs); i++ {
			prev, cur := reqs[i-1], reqs[i]
			if cur.Turn != prev.Turn+1 {
				t.Fatalf("session %d: turn %d follows turn %d", sess, cur.Turn, prev.Turn)
			}
			if cur.At < prev.At {
				t.Fatalf("session %d: turn %d arrives before turn %d", sess, cur.Turn, prev.Turn)
			}
			if len(cur.Prompt) <= len(prev.Prompt) {
				t.Fatalf("session %d: turn %d prompt did not grow", sess, cur.Turn)
			}
			for j, tok := range prev.Prompt {
				if cur.Prompt[j] != tok {
					t.Fatalf("session %d turn %d: prompt diverges from previous turn at token %d", sess, cur.Turn, j)
				}
			}
			multiTurn++
		}
	}
	if multiTurn == 0 {
		t.Fatal("no multi-turn sessions generated")
	}
}

// Sessions sharing a prefix family must start with identical tokens so the
// prefix cache sees cross-session hits, not just intra-session ones.
func TestChatSharedPrefixFamilies(t *testing.T) {
	tr := Chat(Spec{Seed: 5, N: 200, Vocab: 128})
	firstBySession := map[int]Request{}
	for _, r := range tr {
		if _, ok := firstBySession[r.Session]; !ok || r.Turn == 0 {
			if r.Turn == 0 {
				firstBySession[r.Session] = r
			}
		}
	}
	shared := 0
	firsts := make([]Request, 0, len(firstBySession))
	for _, r := range firstBySession {
		firsts = append(firsts, r)
	}
	for i := 0; i < len(firsts); i++ {
		for j := i + 1; j < len(firsts); j++ {
			a, b := firsts[i].Prompt, firsts[j].Prompt
			n := 0
			for n < len(a) && n < len(b) && a[n] == b[n] {
				n++
			}
			if n >= 4 {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatal("no pair of sessions shares a prefix family")
	}
}

func TestAssignTenantsSessionConsistent(t *testing.T) {
	tr := Chat(Spec{Seed: 9, N: 120, Vocab: 64})
	tagged := AssignTenants(tr, 42, "free", "pro", "batch")
	if len(tagged) != len(tr) {
		t.Fatalf("AssignTenants changed length: %d vs %d", len(tagged), len(tr))
	}
	for i := range tr {
		if tr[i].Tenant != "" {
			t.Fatalf("AssignTenants mutated its input at %d", i)
		}
	}
	bySession := map[int]string{}
	for i, r := range tagged {
		if r.Tenant == "" {
			t.Fatalf("request %d left untagged", i)
		}
		if prev, ok := bySession[r.Session]; ok && prev != r.Tenant {
			t.Fatalf("session %d hops tenants: %s then %s", r.Session, prev, r.Tenant)
		}
		bySession[r.Session] = r.Tenant
	}
	again := AssignTenants(tr, 42, "free", "pro", "batch")
	if tagged.Encode() != again.Encode() {
		t.Fatal("AssignTenants is not deterministic for a fixed seed")
	}
	if got := tagged.Tenants(); len(got) < 2 {
		t.Fatalf("expected at least 2 tenants used, got %v", got)
	}
}

func TestMergeOrdersByArrival(t *testing.T) {
	a := Trace{{At: 3 * time.Millisecond, Prompt: []int{1}, MaxNewTokens: 1, Kind: "x"}}
	b := Trace{
		{At: 1 * time.Millisecond, Prompt: []int{2}, MaxNewTokens: 1, Kind: "y"},
		{At: 3 * time.Millisecond, Prompt: []int{3}, MaxNewTokens: 1, Kind: "y"},
	}
	m := Merge(a, b)
	if len(m) != 3 {
		t.Fatalf("merged length %d", len(m))
	}
	if m[0].Kind != "y" || m[1].Kind != "x" || m[2].Kind != "y" {
		t.Fatalf("unexpected merge order: %v %v %v", m[0].Kind, m[1].Kind, m[2].Kind)
	}
}

func TestMultiTenantMix(t *testing.T) {
	tr, err := MultiTenant(
		TenantStream{Tenant: "pro", Kind: "chat", Spec: testSpec(1)},
		TenantStream{Tenant: "free", Kind: "diurnal", Spec: testSpec(2)},
		TenantStream{Tenant: "batch", Kind: "batch", Spec: testSpec(3)},
	)
	if err != nil {
		t.Fatalf("MultiTenant: %v", err)
	}
	if len(tr) != 600 {
		t.Fatalf("got %d requests, want 600", len(tr))
	}
	want := []string{"batch", "free", "pro"}
	got := tr.Tenants()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("tenants %v, want %v", got, want)
	}
	prev := time.Duration(-1)
	sessionTenant := map[int]string{}
	for _, r := range tr {
		if r.At < prev {
			t.Fatal("merged trace not time-ordered")
		}
		prev = r.At
		if r.Session >= 0 {
			if prevT, ok := sessionTenant[r.Session]; ok && prevT != r.Tenant {
				t.Fatalf("session %d spans tenants %s and %s", r.Session, prevT, r.Tenant)
			}
			sessionTenant[r.Session] = r.Tenant
		}
	}
	if _, err := MultiTenant(TenantStream{Tenant: "x", Kind: "nope", Spec: testSpec(1)}); err == nil {
		t.Fatal("unknown kind must error")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Seed: 1, N: 0, Vocab: 8},
		{Seed: 1, N: 5, Vocab: 0},
		{Seed: 1, N: 5, Vocab: 8, MinPromptLen: 4, MaxPromptLen: 2},
		{Seed: 1, N: 5, Vocab: 8, MinNewTokens: 4, MaxNewTokens: 2},
		{Seed: 1, N: 5, Vocab: 8, Horizon: -time.Second},
	}
	for i, s := range bad {
		if _, err := Generate("diurnal", s); err == nil {
			t.Fatalf("case %d: invalid spec accepted", i)
		}
	}
	if _, err := Generate("bogus", testSpec(1)); err == nil {
		t.Fatal("unknown generator accepted")
	}
}
