// Package workload generates deterministic, seeded request traces for the
// serving stack: diurnal, bursty (MMPP-style on/off), and heavy-tail
// (Pareto interarrival, lognormal length) arrival processes, multi-turn chat
// sessions whose growing prompts exercise the shared-prefix KV cache,
// long-context summarization, batch-offline jobs, and multi-tenant mixes.
//
// Every generator is a pure function of its Spec: the same seed produces a
// byte-identical trace (arrival times, tenants, session structure, prompt
// tokens, output budgets), which the golden-trace tests pin via Encode. The
// estimator-accuracy grid (internal/experiments, `lmo-bench -run workload`)
// replays these traces through the real scheduler and scores every
// performance-model estimator against what actually happened.
package workload

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"
)

// Request is one generated serving request: an arrival offset from the trace
// start, the tenant it bills to, optional chat-session coordinates, and the
// prompt/budget shape.
type Request struct {
	// At is the arrival time relative to the trace start.
	At time.Duration
	// Tenant is the billing tenant ("" until AssignTenants or a tenant-tagged
	// spec fills it in).
	Tenant string
	// Session and Turn locate a request inside a multi-turn chat session;
	// Session is -1 for requests that are not part of one.
	Session int
	// Turn is the 0-based turn index within the session.
	Turn int
	// Prompt is the token sequence to prefill.
	Prompt []int
	// MaxNewTokens is the generation budget.
	MaxNewTokens int
	// Kind names the generator that produced the request.
	Kind string
}

// Trace is a time-ordered request sequence.
type Trace []Request

// Duration returns the last arrival offset (zero for an empty trace).
func (t Trace) Duration() time.Duration {
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].At
}

// Tenants returns the distinct tenants appearing in the trace, sorted.
func (t Trace) Tenants() []string {
	seen := map[string]bool{}
	for _, r := range t {
		seen[r.Tenant] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// promptHash is a stable FNV-1a digest of the prompt tokens, so the golden
// encoding pins prompt *content* without storing every token.
func promptHash(prompt []int) uint32 {
	h := fnv.New32a()
	var buf [4]byte
	for _, tok := range prompt {
		buf[0] = byte(tok)
		buf[1] = byte(tok >> 8)
		buf[2] = byte(tok >> 16)
		buf[3] = byte(tok >> 24)
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Encode renders the trace in its canonical golden form: one tab-separated
// line per request with the arrival offset in microseconds, tenant, session
// coordinates, prompt length, budget, and a prompt-content hash. Two traces
// encode identically iff they are identical in every golden-pinned respect.
func (t Trace) Encode() string {
	var b strings.Builder
	for i, r := range t {
		tenant := r.Tenant
		if tenant == "" {
			tenant = "-"
		}
		fmt.Fprintf(&b, "%d\t%dus\t%s\t%s\tsess=%d\tturn=%d\tplen=%d\tnew=%d\tph=%08x\n",
			i, r.At.Microseconds(), r.Kind, tenant, r.Session, r.Turn,
			len(r.Prompt), r.MaxNewTokens, promptHash(r.Prompt))
	}
	return b.String()
}

// Merge interleaves traces by arrival time. Ties keep the argument order
// (stable), so merges are as deterministic as their inputs.
func Merge(traces ...Trace) Trace {
	var out Trace
	for _, t := range traces {
		out = append(out, t...)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Validate reports malformed generator parameters.
func (s Spec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("workload: request count %d must be positive", s.N)
	}
	if s.Vocab <= 0 {
		return fmt.Errorf("workload: vocab %d must be positive", s.Vocab)
	}
	if s.MinPromptLen < 1 || s.MaxPromptLen < s.MinPromptLen {
		return fmt.Errorf("workload: prompt length bounds [%d, %d] invalid", s.MinPromptLen, s.MaxPromptLen)
	}
	if s.MinNewTokens < 1 || s.MaxNewTokens < s.MinNewTokens {
		return fmt.Errorf("workload: budget bounds [%d, %d] invalid", s.MinNewTokens, s.MaxNewTokens)
	}
	if s.Horizon < 0 {
		return fmt.Errorf("workload: negative horizon %v", s.Horizon)
	}
	return nil
}

// Spec parameterizes a generator run. The zero values of the optional fields
// are filled by withDefaults; Seed, N, and Vocab must be set.
type Spec struct {
	// Seed drives every random draw; equal specs generate equal traces.
	Seed int64
	// N is the number of requests to generate.
	N int
	// Vocab bounds prompt token values to [0, Vocab).
	Vocab int
	// Horizon is the arrival window the trace targets (generators may run
	// slightly past it); zero takes N × 15ms.
	Horizon time.Duration
	// Prompt-length bounds; zero takes [2, 24].
	MinPromptLen, MaxPromptLen int
	// Output-budget bounds; zero takes [2, 12].
	MinNewTokens, MaxNewTokens int
	// Tenant tags every generated request (AssignTenants can re-tag later).
	Tenant string
	// SessionBase offsets chat-session IDs so merged traces from multiple
	// chat generators keep their sessions distinct.
	SessionBase int
}

// withDefaults fills the optional fields.
func (s Spec) withDefaults() Spec {
	if s.Horizon == 0 {
		s.Horizon = time.Duration(s.N) * 15 * time.Millisecond
	}
	if s.MinPromptLen == 0 {
		s.MinPromptLen = 2
	}
	if s.MaxPromptLen == 0 {
		s.MaxPromptLen = 24
	}
	if s.MinNewTokens == 0 {
		s.MinNewTokens = 2
	}
	if s.MaxNewTokens == 0 {
		s.MaxNewTokens = 12
	}
	return s
}

// meanGap is the average interarrival the spec's horizon implies.
func (s Spec) meanGap() time.Duration {
	return s.Horizon / time.Duration(s.N)
}

// Kinds lists the built-in generators in canonical order.
func Kinds() []string {
	return []string{"diurnal", "bursty", "heavytail", "chat", "summarize", "batch"}
}

// Generate dispatches to a built-in generator by kind name.
func Generate(kind string, s Spec) (Trace, error) {
	if err := s.withDefaults().Validate(); err != nil {
		return nil, err
	}
	switch kind {
	case "diurnal":
		return Diurnal(s), nil
	case "bursty":
		return Bursty(s), nil
	case "heavytail":
		return HeavyTail(s), nil
	case "chat":
		return Chat(s), nil
	case "summarize":
		return Summarize(s), nil
	case "batch":
		return BatchOffline(s), nil
	default:
		return nil, fmt.Errorf("workload: unknown generator %q (have %v)", kind, Kinds())
	}
}
