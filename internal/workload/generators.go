package workload

import (
	"math"
	"math/rand"
	"time"
)

// randPrompt draws a uniform-length prompt with tokens in [0, Vocab).
func randPrompt(rng *rand.Rand, s Spec, minLen, maxLen int) []int {
	n := minLen
	if maxLen > minLen {
		n += rng.Intn(maxLen - minLen + 1)
	}
	prompt := make([]int, n)
	for i := range prompt {
		prompt[i] = rng.Intn(s.Vocab)
	}
	return prompt
}

// randBudget draws a uniform output budget within the spec bounds.
func randBudget(rng *rand.Rand, s Spec) int {
	if s.MaxNewTokens > s.MinNewTokens {
		return s.MinNewTokens + rng.Intn(s.MaxNewTokens-s.MinNewTokens+1)
	}
	return s.MinNewTokens
}

// Diurnal generates an inhomogeneous Poisson arrival process whose rate
// follows one sinusoidal "day" across the horizon: a trough at the start and
// end, a peak in the middle, with the trough floored at 15% of the peak so
// off-hours traffic never fully stops. Arrivals are drawn by thinning a
// homogeneous process at the peak rate.
func Diurnal(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	// The mean of the modulation 0.15 + 0.85·(1+sin)/2 over a full period is
	// 0.575, so the peak rate that lands ~N arrivals in the horizon is
	// N / (0.575·H).
	peakRate := float64(s.N) / (0.575 * s.Horizon.Seconds())
	var out Trace
	at := 0.0
	for len(out) < s.N {
		at += rng.ExpFloat64() / peakRate
		phase := 2*math.Pi*at/s.Horizon.Seconds() - math.Pi/2
		accept := 0.15 + 0.85*(1+math.Sin(phase))/2
		if rng.Float64() > accept {
			continue
		}
		out = append(out, Request{
			At:           time.Duration(at * float64(time.Second)),
			Tenant:       s.Tenant,
			Session:      -1,
			Prompt:       randPrompt(rng, s, s.MinPromptLen, s.MaxPromptLen),
			MaxNewTokens: randBudget(rng, s),
			Kind:         "diurnal",
		})
	}
	return out
}

// Bursty generates a two-state Markov-modulated Poisson process (MMPP): an
// ON state arriving ~6× faster than the spec's mean rate and an OFF state
// ~6× slower, with exponentially distributed sojourns of about an eighth of
// the horizon each. The result alternates dense bursts with near-silence at
// the same overall request count — the regime that stresses admission
// control and drain prediction.
func Bursty(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	meanGap := s.meanGap().Seconds()
	gaps := [2]float64{meanGap / 6, meanGap * 6} // ON, OFF
	sojourn := s.Horizon.Seconds() / 8
	state := 0 // start in a burst: the cold-start flood is the hard case
	stateEnds := rng.ExpFloat64() * sojourn
	var out Trace
	at := 0.0
	for len(out) < s.N {
		at += rng.ExpFloat64() * gaps[state]
		for at > stateEnds {
			state = 1 - state
			stateEnds += rng.ExpFloat64() * sojourn
		}
		out = append(out, Request{
			At:           time.Duration(at * float64(time.Second)),
			Tenant:       s.Tenant,
			Session:      -1,
			Prompt:       randPrompt(rng, s, s.MinPromptLen, s.MaxPromptLen),
			MaxNewTokens: randBudget(rng, s),
			Kind:         "bursty",
		})
	}
	return out
}

// heavyTailAlpha is the Pareto shape for interarrivals: 1.5 has a finite
// mean but infinite variance, so a few very long gaps separate clumps of
// near-simultaneous arrivals.
const heavyTailAlpha = 1.5

// HeavyTail generates Pareto-distributed interarrival gaps and lognormal
// prompt/output lengths (clamped to the spec bounds): most requests are
// small and closely spaced, a heavy tail of long prompts and long silences
// dominates the aggregate. σ=0.8 puts roughly 10% of draws past 2.8× the
// median.
func HeavyTail(s Spec) Trace {
	s = s.withDefaults()
	rng := rand.New(rand.NewSource(s.Seed))
	// Pareto with mean = xm·α/(α-1) matched to the spec's mean gap.
	xm := s.meanGap().Seconds() * (heavyTailAlpha - 1) / heavyTailAlpha
	const sigma = 0.8
	lognorm := func(median float64) float64 {
		return median * math.Exp(sigma*rng.NormFloat64()-sigma*sigma/2)
	}
	clamp := func(v float64, lo, hi int) int {
		n := int(math.Round(v))
		if n < lo {
			return lo
		}
		if n > hi {
			return hi
		}
		return n
	}
	var out Trace
	at := 0.0
	for len(out) < s.N {
		at += xm / math.Pow(rng.Float64(), 1/heavyTailAlpha)
		plen := clamp(lognorm(float64(s.MinPromptLen+s.MaxPromptLen)/3), s.MinPromptLen, s.MaxPromptLen)
		budget := clamp(lognorm(float64(s.MinNewTokens+s.MaxNewTokens)/3), s.MinNewTokens, s.MaxNewTokens)
		out = append(out, Request{
			At:           time.Duration(at * float64(time.Second)),
			Tenant:       s.Tenant,
			Session:      -1,
			Prompt:       randPrompt(rng, s, plen, plen),
			MaxNewTokens: budget,
			Kind:         "heavytail",
		})
	}
	return out
}

// AssignTenants re-tags a trace with tenants drawn from the given list,
// weighted uniformly, holding each chat session on a single tenant (a
// session hopping tenants would be nonsense traffic). The assignment is a
// pure function of (trace, seed, tenants); the input is not modified.
func AssignTenants(t Trace, seed int64, tenants ...string) Trace {
	if len(tenants) == 0 {
		return append(Trace(nil), t...)
	}
	rng := rand.New(rand.NewSource(seed))
	bySession := map[int]string{}
	out := make(Trace, len(t))
	for i, r := range t {
		if r.Session >= 0 {
			name, ok := bySession[r.Session]
			if !ok {
				name = tenants[rng.Intn(len(tenants))]
				bySession[r.Session] = name
			}
			r.Tenant = name
		} else {
			r.Tenant = tenants[rng.Intn(len(tenants))]
		}
		out[i] = r
	}
	return out
}
