package workload

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden workload traces")

// checkGolden compares got against testdata/<name>.golden, rewriting the file
// under -update (same idiom as the xtrace golden trace-structure tests).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/workload -update`): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s: trace diverged from golden (run with -update if the change is intended)\n got %d bytes, want %d bytes", name, len(got), len(want))
	}
}

// Each generator's trace for a pinned seed must stay byte-identical release
// to release: arrival times, tenants, session structure, prompt lengths and
// content hashes, and output budgets are all pinned via Encode.
func TestGoldenTraces(t *testing.T) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			tr, err := Generate(kind, Spec{Seed: 20260808, N: 60, Vocab: 128})
			if err != nil {
				t.Fatalf("Generate(%q): %v", kind, err)
			}
			checkGolden(t, kind, tr.Encode())
		})
	}
}

// The multi-tenant mix (generation + tenant tagging + merge) is golden-pinned
// as a whole, since the grid harness replays exactly this composition.
func TestGoldenMultiTenantMix(t *testing.T) {
	tr, err := MultiTenant(
		TenantStream{Tenant: "pro", Kind: "chat", Spec: Spec{Seed: 101, N: 30, Vocab: 128}},
		TenantStream{Tenant: "free", Kind: "diurnal", Spec: Spec{Seed: 102, N: 30, Vocab: 128}},
		TenantStream{Tenant: "batch", Kind: "batch", Spec: Spec{Seed: 103, N: 20, Vocab: 128}},
	)
	if err != nil {
		t.Fatalf("MultiTenant: %v", err)
	}
	checkGolden(t, "multitenant", tr.Encode())
}

// AssignTenants output is part of the deterministic surface too.
func TestGoldenAssignTenants(t *testing.T) {
	tr := Bursty(Spec{Seed: 55, N: 40, Vocab: 128})
	checkGolden(t, "assign_tenants", AssignTenants(tr, 77, "free", "pro").Encode())
}
