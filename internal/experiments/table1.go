package experiments

import (
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Table1Result reproduces Table 1: per-token I/O traffic for all layers with
// and without attention-computation offloading (OPT-30B, s=64, n=128,
// bls=640).
type Table1Result struct {
	WithOffload    perfmodel.IOTraffic
	WithoutOffload perfmodel.IOTraffic
	// Paper values in bytes for the comparison columns.
	PaperWithWeightsUp, PaperWithoutWeightsUp float64
	PaperWithoutKVUp, PaperWithoutKVDown      float64
	PaperActivation                           float64
}

// Table1 computes the traffic under the published placements: wg≈72% with
// attention offloading (more GPU room for weights) and wg≈35% without (the
// KV working set claims the space).
func Table1() (*Table1Result, error) {
	fg := perfmodel.FlexGenProfile()
	with := estimate(perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.72}, fg)
	without := estimate(perfmodel.Strategy{WeightsGPUPct: 0.35}, fg)
	return &Table1Result{
		WithOffload:           with.Traffic(),
		WithoutOffload:        without.Traffic(),
		PaperWithWeightsUp:    16.32e9,
		PaperWithoutWeightsUp: 38.88e9,
		PaperWithoutKVUp:      78.72e9,
		PaperWithoutKVDown:    0.8e9,
		PaperActivation:       0.38e9,
	}, nil
}

// Format renders the table in the paper's layout.
func (r *Table1Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 1: per-token I/O traffic for all layers (OPT-30B, s=64, n=128, bls=640)\n")
	t := stats.NewTable("config", "direction", "tensor", "measured", "paper")
	add := func(cfg, dir, tensor string, got, paper float64) {
		paperStr := "-"
		if paper > 0 {
			paperStr = stats.GB(paper)
		}
		t.AddRow(cfg, dir, tensor, stats.GB(got), paperStr)
	}
	w, wo := r.WithOffload, r.WithoutOffload
	add("with attn offload", "CPU->GPU", "weights", w.WeightsUp, r.PaperWithWeightsUp)
	add("with attn offload", "CPU->GPU", "KV cache", w.KVCacheUp, 0)
	add("with attn offload", "CPU->GPU", "activation", w.ActivationUp, r.PaperActivation)
	add("with attn offload", "GPU->CPU", "KV cache", w.KVCacheDown, 0)
	add("with attn offload", "GPU->CPU", "activation", w.ActivationDown, r.PaperActivation)
	add("without attn offload", "CPU->GPU", "weights", wo.WeightsUp, r.PaperWithoutWeightsUp)
	add("without attn offload", "CPU->GPU", "KV cache (old)", wo.KVCacheUp, r.PaperWithoutKVUp)
	add("without attn offload", "CPU->GPU", "activation", wo.ActivationUp, r.PaperActivation)
	add("without attn offload", "GPU->CPU", "KV cache (new)", wo.KVCacheDown, r.PaperWithoutKVDown)
	add("without attn offload", "GPU->CPU", "activation", wo.ActivationDown, r.PaperActivation)
	b.WriteString(t.String())
	return b.String()
}

// KVSavingsFraction returns the share of the old-KV upload removed by
// attention offloading (the paper reports 99.5% less than the KV volume for
// the activation it costs instead).
func (r *Table1Result) KVSavingsFraction() float64 {
	if r.WithoutOffload.KVCacheUp == 0 {
		return 0
	}
	return 1 - r.WithOffload.ActivationUp/r.WithoutOffload.KVCacheUp
}
