package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/stats"
)

// ScalePoint is one model size's framework comparison.
type ScalePoint struct {
	Model   string
	ParamsB float64 // billions of parameters
	FlexGen float64
	ZeRO    float64
	LM      float64
	// Feasible reports whether the model fits the platform at all (host
	// memory bounds offloaded inference too).
	Feasible bool
}

// ScaleResult extends the paper's scalability observation (§5.3: "the
// performance benefits of LM-Offload remain consistent as the model size
// increases") across the whole OPT family, including OPT-175B, which
// overflows even the host memory of the A100 platform.
type ScaleResult struct {
	GenLen int
	Points []ScalePoint
}

// ScaleSweep runs the three systems across model scales at one generation
// length.
func ScaleSweep(genLen int) (*ScaleResult, error) {
	plat := a100()
	out := &ScaleResult{GenLen: genLen}
	for _, mod := range []model.Config{model.OPT6B7, model.OPT13B, model.OPT30B, model.OPT66B, model.OPT175B} {
		pt := ScalePoint{Model: mod.Name, ParamsB: float64(mod.TotalWeights()) / 1e9}
		lm, err := baselines.LMOffload(plat, mod, 64, 64, genLen)
		if err != nil {
			// Infeasible at this scale (e.g. OPT-175B weights exceed host
			// memory); record the point as infeasible rather than failing.
			out.Points = append(out.Points, pt)
			continue
		}
		pt.Feasible = true
		pt.LM = lm.Throughput()
		if fg, err := baselines.FlexGen(plat, mod, 64, 64, genLen); err == nil {
			pt.FlexGen = fg.Throughput()
		}
		if zr, err := baselines.ZeRO(plat, mod, 64, genLen); err == nil {
			pt.ZeRO = zr.Throughput()
		}
		out.Points = append(out.Points, pt)
	}
	if len(out.Points) == 0 {
		return nil, fmt.Errorf("experiments: empty scale sweep")
	}
	return out, nil
}

// Format renders the sweep.
func (r *ScaleResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale sweep (beyond the paper): OPT family at n=%d on the A100 platform\n", r.GenLen)
	t := stats.NewTable("model", "params B", "FlexGen", "ZeRO", "LM-Offload", "LM/FG")
	for _, p := range r.Points {
		if !p.Feasible {
			t.AddRowf("%s\t%.1f\tinfeasible\tinfeasible\tinfeasible\t-", p.Model, p.ParamsB)
			continue
		}
		ratio := "-"
		if p.FlexGen > 0 {
			ratio = fmt.Sprintf("%.2fx", p.LM/p.FlexGen)
		}
		t.AddRowf("%s\t%.1f\t%.1f\t%.1f\t%.1f\t%s", p.Model, p.ParamsB, p.FlexGen, p.ZeRO, p.LM, ratio)
	}
	b.WriteString(t.String())
	return b.String()
}
