package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// AvailabilityCell is one (system, scenario) measurement.
type AvailabilityCell struct {
	System     string
	Scenario   string
	Throughput float64 // tok/s under the scenario
	Retention  float64 // fraction of the system's clean throughput
}

// AvailabilityResult compares how much throughput each offloading system
// retains when the platform degrades mid-decode: an interconnect slowdown
// (bandwidth contention from a co-tenant), a transient interconnect outage
// (link reset / ECC retrain), and GPU contention. The schedules come from the
// discrete-event simulator with fault windows; systems that move fewer bytes
// over the faulted resource — or overlap transfers more aggressively — retain
// more of their clean throughput.
type AvailabilityResult struct {
	Model     string
	Scenarios []string
	Cells     []AvailabilityCell
}

// availabilityScenario builds the fault windows for one scenario given the
// clean simulated decode window [0, span) seconds.
type availabilityScenario struct {
	name   string
	events func(span float64) []sim.FaultEvent
}

func availabilityScenarios() []availabilityScenario {
	return []availabilityScenario{
		{"clean", func(span float64) []sim.FaultEvent { return nil }},
		// The CPU-GPU link drops to a quarter of its bandwidth for the middle
		// half of the decode window.
		{"link-4x-slowdown", func(span float64) []sim.FaultEvent {
			return []sim.FaultEvent{{Resource: sim.ResH2D, Start: span * 0.25, Duration: span * 0.5, Factor: 4}}
		}},
		// The link goes away entirely for a quarter of the window.
		{"link-outage", func(span float64) []sim.FaultEvent {
			return []sim.FaultEvent{{Resource: sim.ResH2D, Start: span * 0.25, Duration: span * 0.25}}
		}},
		// A co-tenant halves the effective GPU rate for the whole window.
		{"gpu-2x-contention", func(span float64) []sim.FaultEvent {
			return []sim.FaultEvent{{Resource: sim.ResGPU, Start: 0, Duration: span, Factor: 2}}
		}},
	}
}

// Availability runs the fault-window study on OPT-30B (s=64, n=32, the Table 3
// axis) for FlexGen, ZeRO-Inference, and LM-Offload.
func Availability() (*AvailabilityResult, error) {
	const steps = 3
	mod, err := model.ByName("OPT-30B")
	if err != nil {
		return nil, err
	}
	plat := a100()

	fg, err := baselines.FlexGen(plat, mod, 64, 64, 32)
	if err != nil {
		return nil, fmt.Errorf("experiments: availability flexgen: %w", err)
	}
	zr, err := baselines.ZeRO(plat, mod, 64, 32)
	if err != nil {
		return nil, fmt.Errorf("experiments: availability zero: %w", err)
	}
	lm, err := baselines.LMOffload(plat, mod, 64, 64, 32)
	if err != nil {
		return nil, fmt.Errorf("experiments: availability lm-offload: %w", err)
	}

	out := &AvailabilityResult{Model: mod.Name}
	scenarios := availabilityScenarios()
	for _, sc := range scenarios {
		out.Scenarios = append(out.Scenarios, sc.name)
	}
	for _, sys := range []*baselines.System{fg, zr, lm} {
		clean, err := sim.SimulateDecode(sys.Estimator, steps)
		if err != nil {
			return nil, fmt.Errorf("experiments: availability %s clean: %w", sys.Name, err)
		}
		span := clean.StepTime * float64(mod.Layers) * steps
		for _, sc := range scenarios {
			res, err := sim.SimulateDecode(sys.Estimator, steps, sc.events(span)...)
			if err != nil {
				return nil, fmt.Errorf("experiments: availability %s %s: %w", sys.Name, sc.name, err)
			}
			out.Cells = append(out.Cells, AvailabilityCell{
				System:     sys.Name,
				Scenario:   sc.name,
				Throughput: res.Throughput,
				Retention:  res.Throughput / clean.Throughput,
			})
		}
	}
	return out, nil
}

// Format renders the retention table.
func (r *AvailabilityResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Availability under platform faults (%s, s=64, n=32, simulated decode)\n", r.Model)
	b.WriteString("retention = throughput under the fault scenario / clean throughput\n")
	t := stats.NewTable("system", "scenario", "tok/s", "retention")
	for _, c := range r.Cells {
		t.AddRowf("%s\t%s\t%.1f\t%.0f%%", c.System, c.Scenario, c.Throughput, c.Retention*100)
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV emits the grid for plotting.
func (r *AvailabilityResult) CSV() string {
	var b strings.Builder
	b.WriteString("system,scenario,throughput_tok_s,retention\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%.3f,%.4f\n", c.System, c.Scenario, c.Throughput, c.Retention)
	}
	return b.String()
}
