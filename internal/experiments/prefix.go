package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
)

// PrefixRow is one overlap level of the shared-prefix reuse experiment: the
// same trace served twice, with the prefix cache off and on.
type PrefixRow struct {
	// Overlap is the fraction of each prompt shared with every other request
	// in the row (the system-prompt scenario).
	Overlap  float64
	Requests int
	// TTFTOff/TTFTOn are median submit-to-first-token latencies over the
	// per-request minima across prefixReps repetitions, excluding the first
	// (necessarily cold) request of each run.
	TTFTOff time.Duration
	TTFTOn  time.Duration
	// Speedup is TTFTOff / TTFTOn.
	Speedup float64
	// HitRate and ReusedTokens come from the cache-on run's counters.
	HitRate      float64
	ReusedTokens int64
}

// PrefixResult is the shared-prefix KV reuse experiment: Poisson arrivals of
// prompts sharing a common prefix (0%, 50%, 75% of the prompt), served with
// and without the prefix cache. It demonstrates the TTFT win the cache buys
// on system-prompt-style traffic while re-verifying that reuse keeps served
// tokens bit-identical to solo generation and that the admission-time peak
// estimate still upper-bounds the measured arena high-water mark.
type PrefixResult struct {
	Model      model.Config
	PromptLen  int
	CacheBytes int64
	Rows       []PrefixRow
	// ExactChecked is how many cache-on completions were re-verified
	// token-exact against a dedicated solo replay.
	ExactChecked int
}

// prefixPromptLen is long enough that per-token prefill compute dominates the
// fixed per-layer streaming cost, so suffix-only prefill shows up in TTFT
// with enough margin that machine noise cannot flip the 1.5x assertion.
const prefixPromptLen = 160

// prefixOverlaps are the shared-prefix fractions swept.
var prefixOverlaps = []float64{0, 0.5, 0.75}

// prefixReps is how many times each off/on pair is repeated. The reported
// TTFT is the median over requests of each request's *minimum* across
// repetitions: a load spike only corrupts a request's sample if it hits that
// request in every repetition, so the envelope tracks the machine's true
// prefill floor even when whole runs land on a busy interval.
const prefixReps = 5

// prefixAttempts bounds how many times an overlap level that misses the
// speedup bar is re-measured before the experiment fails.
const prefixAttempts = 3

// prefixTrace builds n prompts of promptLen tokens sharing the first
// sharedLen tokens, plus Poisson inter-arrival gaps.
func prefixTrace(rng *rand.Rand, n, promptLen, sharedLen, vocab int) (prompts [][]int, gaps []time.Duration) {
	shared := make([]int, sharedLen)
	for i := range shared {
		shared[i] = rng.Intn(vocab)
	}
	for i := 0; i < n; i++ {
		p := make([]int, promptLen)
		copy(p, shared)
		for j := sharedLen; j < promptLen; j++ {
			p[j] = rng.Intn(vocab)
		}
		prompts = append(prompts, p)
		gaps = append(gaps, time.Duration(rng.ExpFloat64()*float64(time.Millisecond)))
	}
	return prompts, gaps
}

// prefixServeRun serves the trace closed-loop (each request waits for the
// previous, spaced by the Poisson gaps) so TTFT isolates prefill cost from
// queueing, and returns the per-request TTFTs, outputs, and final metrics.
func prefixServeRun(seed int64, cfg model.Config, prompts [][]int, gaps []time.Duration, budget int, cacheBytes int64) ([]time.Duration, [][]int, serve.Metrics, error) {
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, nil, serve.Metrics{}, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 2, Prefetch: true}, 1<<30, threadpool.MustNew(2))
	if err != nil {
		return nil, nil, serve.Metrics{}, err
	}
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.PrefixCacheBytes = cacheBytes
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, nil, serve.Metrics{}, err
	}
	defer sched.Close()

	ttfts := make([]time.Duration, len(prompts))
	outs := make([][]int, len(prompts))
	ctx := context.Background()
	for i, prompt := range prompts {
		time.Sleep(gaps[i])
		t0 := time.Now()
		st, err := sched.Submit(ctx, serve.Request{Prompt: prompt, MaxNewTokens: budget})
		if err != nil {
			return nil, nil, serve.Metrics{}, fmt.Errorf("experiments: prefix: submit %d: %w", i, err)
		}
		if _, ok := <-st.Tokens(); ok {
			ttfts[i] = time.Since(t0)
		}
		outs[i], err = st.Wait()
		if err != nil {
			return nil, nil, serve.Metrics{}, fmt.Errorf("experiments: prefix: request %d: %w", i, err)
		}
	}
	met := sched.Metrics()
	return ttfts, outs, met, nil
}

// minEnvelope folds one repetition's per-request TTFTs into the running
// elementwise minimum.
func minEnvelope(env, ds []time.Duration) []time.Duration {
	if env == nil {
		return append([]time.Duration(nil), ds...)
	}
	for i, d := range ds {
		if d < env[i] {
			env[i] = d
		}
	}
	return env
}

// medianSkipFirst takes the median after dropping the first sample — the
// cold request that can never hit the cache, excluded from both runs for
// symmetry. The median (not the mean) keeps a single GC or scheduler pause
// in an 11-sample run from flipping the speedup assertion.
func medianSkipFirst(ds []time.Duration) time.Duration {
	if len(ds) <= 1 {
		return 0
	}
	warm := append([]time.Duration(nil), ds[1:]...)
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
	mid := len(warm) / 2
	if len(warm)%2 == 0 {
		return (warm[mid-1] + warm[mid]) / 2
	}
	return warm[mid]
}

// PrefixReuse runs the shared-prefix experiment with n requests per overlap
// level. It fails if reuse at >= 50% overlap does not improve median TTFT by
// at least 1.5x, if any cache-on completion diverges from its solo replay, or
// if the admission estimate falls below the measured arena peak. Because the
// speedup is a wall-clock ratio, a level that misses the bar is re-measured
// up to prefixAttempts times before failing: a load spike does not recur
// across attempts, a real regression (ratio near 1x) fails every one.
func PrefixReuse(n int) (*PrefixResult, error) {
	cfg := model.Tiny()
	const (
		seed       = 20250806
		budget     = 8
		cacheBytes = 16 << 20
	)
	out := &PrefixResult{Model: cfg, PromptLen: prefixPromptLen, CacheBytes: cacheBytes}

	for _, overlap := range prefixOverlaps {
		rng := rand.New(rand.NewSource(seed + int64(overlap*100)))
		prompts, gaps := prefixTrace(rng, n, prefixPromptLen, int(overlap*prefixPromptLen), cfg.Vocab)

		var (
			row    PrefixRow
			onOuts [][]int
		)
		for attempt := 1; ; attempt++ {
			var (
				offEnv, onEnv []time.Duration
				met           serve.Metrics
			)
			for rep := 0; rep < prefixReps; rep++ {
				offTTFT, _, _, err := prefixServeRun(seed, cfg, prompts, gaps, budget, 0)
				if err != nil {
					return nil, err
				}
				onTTFT, repOuts, repMet, err := prefixServeRun(seed, cfg, prompts, gaps, budget, cacheBytes)
				if err != nil {
					return nil, err
				}
				if repMet.PredictedPeakBytes < repMet.ArenaPeak {
					return nil, fmt.Errorf("experiments: prefix: admission estimate %d below arena peak %d at overlap %.0f%%",
						repMet.PredictedPeakBytes, repMet.ArenaPeak, overlap*100)
				}
				offEnv = minEnvelope(offEnv, offTTFT)
				onEnv = minEnvelope(onEnv, onTTFT)
				onOuts, met = repOuts, repMet
			}

			row = PrefixRow{
				Overlap:      overlap,
				Requests:     n,
				TTFTOff:      medianSkipFirst(offEnv),
				TTFTOn:       medianSkipFirst(onEnv),
				HitRate:      met.PrefixHitRate,
				ReusedTokens: met.Serve.PrefixReusedTokens,
			}
			if row.TTFTOn > 0 {
				row.Speedup = float64(row.TTFTOff) / float64(row.TTFTOn)
			}
			if overlap < 0.5 || row.Speedup >= 1.5 {
				break
			}
			if attempt == prefixAttempts {
				return nil, fmt.Errorf("experiments: prefix: TTFT speedup %.2fx below 1.5x at overlap %.0f%% after %d attempts (off %v, on %v)",
					row.Speedup, overlap*100, attempt, row.TTFTOff, row.TTFTOn)
			}
		}
		out.Rows = append(out.Rows, row)

		// Sampled exactness: reuse must not change a single served token.
		if overlap >= 0.5 {
			for i := 0; i < len(prompts) && out.ExactChecked < 4; i += len(prompts) / 2 {
				want, err := prefixSoloReplay(seed, cfg, prompts[i], budget)
				if err != nil {
					return nil, err
				}
				if len(want) != len(onOuts[i]) {
					return nil, fmt.Errorf("experiments: prefix: request %d length %d != solo %d", i, len(onOuts[i]), len(want))
				}
				for j := range want {
					if want[j] != onOuts[i][j] {
						return nil, fmt.Errorf("experiments: prefix: request %d token %d = %d, solo %d", i, j, onOuts[i][j], want[j])
					}
				}
				out.ExactChecked++
			}
		}
	}
	return out, nil
}

// prefixSoloReplay regenerates one request on a dedicated engine with no
// serving layer and no prefix cache — the exactness reference.
func prefixSoloReplay(seed int64, cfg model.Config, prompt []int, budget int) ([]int, error) {
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		return nil, err
	}
	outs, err := eng.Generate(context.Background(), [][]int{prompt}, budget)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// Format renders the overlap sweep.
func (r *PrefixResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shared-prefix KV reuse: %s, %d-token prompts, %d MiB cache, Poisson arrivals\n",
		r.Model.Name, r.PromptLen, r.CacheBytes>>20)
	t := stats.NewTable("overlap", "requests", "ttft off (ms)", "ttft on (ms)", "speedup", "hit rate", "reused tokens")
	for _, row := range r.Rows {
		t.AddRowf("%.0f%%\t%d\t%.2f\t%.2f\t%.2fx\t%.2f\t%d",
			row.Overlap*100, row.Requests,
			float64(row.TTFTOff)/float64(time.Millisecond),
			float64(row.TTFTOn)/float64(time.Millisecond),
			row.Speedup, row.HitRate, row.ReusedTokens)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "%d cache-on completions re-verified token-exact against solo replays; admission estimate upper-bounded the arena peak in every run\n",
		r.ExactChecked)
	return b.String()
}

// CSV emits the overlap sweep.
func (r *PrefixResult) CSV() string {
	var b strings.Builder
	b.WriteString("overlap,requests,ttft_off_ms,ttft_on_ms,speedup,hit_rate,reused_tokens\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.2f,%d,%.3f,%.3f,%.3f,%.3f,%d\n",
			row.Overlap, row.Requests,
			float64(row.TTFTOff)/float64(time.Millisecond),
			float64(row.TTFTOn)/float64(time.Millisecond),
			row.Speedup, row.HitRate, row.ReusedTokens)
	}
	return b.String()
}
