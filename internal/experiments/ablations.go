package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/parallelism"
	"repro/internal/perfmodel"
	"repro/internal/quant"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// AblationResult collects the design-choice ablations DESIGN.md calls out,
// beyond the paper's own Figure 7 ablation.
type AblationResult struct {
	// OverlapBetaSweep: throughput of the LM-Offload policy as the overlap
	// quality degrades from ideal Eq. 2 (β=0) to fully serial (β=1).
	OverlapBeta []float64
	OverlapTput []float64
	// BundlingGain is the compute-task improvement from small-operator
	// bundling in Algorithm 3.
	BundledOps, UnbundledOps   int
	BundledTime, UnbundledTime float64
	// ThreadAssignment compares proportional vs uniform transfer-thread
	// assignment (step time, seconds).
	ProportionalStep, UniformStep float64
	// GroupSizeSweep: KV-quantized throughput across quantization group
	// sizes (metadata overhead vs accuracy granularity).
	GroupSizes []int
	GroupTput  []float64
	// BitsSweep: throughput across KV quantization widths, with the
	// reconstruction accuracy (SNR) of each width on a reference tensor.
	Bits     []int
	BitsTput []float64
	BitsSNR  []float64
	// BlockSweep: throughput versus zig-zag block size (why FlexGen-style
	// blocks beat ZeRO-style single batches).
	BlockSizes []int
	BlockTput  []float64
}

// Ablations runs all sweeps on the motivation workload.
func Ablations() (*AblationResult, error) {
	out := &AblationResult{}
	base := perfmodel.Strategy{WeightsGPUPct: 0.75, QuantWeights: true, WeightBits: 4,
		QuantKV: true, KVBits: 4, CompressGPUWeights: true, GroupSize: 64}

	// 1. Overlap quality sweep.
	for _, beta := range []float64{0, 0.25, 0.5, 0.75, 0.85, 0.95, 1} {
		exec := perfmodel.LMOffloadProfile()
		exec.OverlapBeta = beta
		out.OverlapBeta = append(out.OverlapBeta, beta)
		out.OverlapTput = append(out.OverlapTput, estimate(base, exec).Throughput())
	}

	// 2. Operator bundling.
	ctrl, og, transfers, err := figure5Setup()
	if err != nil {
		return nil, err
	}
	out.UnbundledOps = len(og.Ops)
	bundled := og.Bundle(ctrl.Profile, 8, ctrl.BundleThreshold)
	out.BundledOps = len(bundled.Ops)
	if out.UnbundledTime, err = ctrl.Profile.ComputeTaskTime(og, og.MaxConcurrency(), 8); err != nil {
		return nil, err
	}
	if out.BundledTime, err = ctrl.Profile.ComputeTaskTime(bundled, bundled.MaxConcurrency(), 8); err != nil {
		return nil, err
	}

	// 3. Proportional vs uniform transfer-thread assignment.
	tuned, err := ctrl.Optimize(og, transfers)
	if err != nil {
		return nil, err
	}
	out.ProportionalStep = tuned.StepTime
	out.UniformStep = uniformAssignmentStep(ctrl, og, transfers, tuned)

	// 4. Group size sweep.
	for _, g := range []int{16, 32, 64, 128, 256} {
		s := base
		s.GroupSize = g
		out.GroupSizes = append(out.GroupSizes, g)
		out.GroupTput = append(out.GroupTput, estimate(s, perfmodel.LMOffloadProfile()).Throughput())
	}

	// 5. KV bit-width sweep with reconstruction accuracy.
	refTensor := tensor.RandN(rand.New(rand.NewSource(1)), 1, 256, 64)
	for _, bits := range []int{2, 4, 8} {
		s := base
		s.KVBits = bits
		out.Bits = append(out.Bits, bits)
		out.BitsTput = append(out.BitsTput, estimate(s, perfmodel.LMOffloadProfile()).Throughput())
		st, err := quant.Analyze(refTensor, quant.Config{Bits: bits, GroupSize: base.GroupSize})
		if err != nil {
			return nil, err
		}
		out.BitsSNR = append(out.BitsSNR, st.SNRdB)
	}

	// 6. Zig-zag block-size sweep: same GPU batch, more batches per block.
	mod, workBase := motivationWorkload()
	for _, nb := range []int{1, 2, 5, 10, 20} {
		w := workBase
		w.NumBatches = nb
		e, err := perfmodel.New(a100(), mod, w, base, perfmodel.LMOffloadProfile())
		if err != nil {
			return nil, err
		}
		out.BlockSizes = append(out.BlockSizes, w.BlockSize())
		out.BlockTput = append(out.BlockTput, e.Throughput())
	}
	return out, nil
}

// uniformAssignmentStep evaluates the tuned compute setting with the free
// threads split evenly across the transfer tasks instead of proportionally.
func uniformAssignmentStep(ctrl *parallelism.Controller, og *parallelism.OpGraph, transfers []parallelism.TransferTask, tuned parallelism.Setting) float64 {
	free := 0
	for _, n := range tuned.TransferThreads {
		free += n
	}
	each := free / len(transfers)
	if each < 1 {
		each = 1
	}
	step := tuned.ComputeTime
	for _, tr := range transfers {
		if t := transferTimeFor(ctrl, tr, each); t > step {
			step = t
		}
	}
	return step
}

// Format renders all sweeps.
func (r *AblationResult) Format() string {
	var b strings.Builder
	b.WriteString("Ablations\n\n1. Overlap quality (β) on the LM-Offload policy:\n")
	t := stats.NewTable("beta", "tok/s")
	for i := range r.OverlapBeta {
		t.AddRowf("%.2f\t%.1f", r.OverlapBeta[i], r.OverlapTput[i])
	}
	b.WriteString(t.String())

	fmt.Fprintf(&b, "\n2. Operator bundling: %d ops -> %d ops, compute %.2fms -> %.2fms\n",
		r.UnbundledOps, r.BundledOps, r.UnbundledTime*1e3, r.BundledTime*1e3)
	fmt.Fprintf(&b, "\n3. Transfer threads: proportional %.2fms vs uniform %.2fms per step\n",
		r.ProportionalStep*1e3, r.UniformStep*1e3)

	b.WriteString("\n4. Quantization group size (KV 4-bit):\n")
	t2 := stats.NewTable("group", "tok/s")
	for i := range r.GroupSizes {
		t2.AddRowf("%d\t%.1f", r.GroupSizes[i], r.GroupTput[i])
	}
	b.WriteString(t2.String())

	b.WriteString("\n5. KV quantization width (throughput vs accuracy):\n")
	t3 := stats.NewTable("bits", "tok/s", "SNR dB")
	for i := range r.Bits {
		t3.AddRowf("%d\t%.1f\t%.1f", r.Bits[i], r.BitsTput[i], r.BitsSNR[i])
	}
	b.WriteString(t3.String())

	b.WriteString("\n6. Zig-zag block size:\n")
	t4 := stats.NewTable("block", "tok/s")
	for i := range r.BlockSizes {
		t4.AddRowf("%d\t%.1f", r.BlockSizes[i], r.BlockTput[i])
	}
	b.WriteString(t4.String())
	return b.String()
}
