package experiments

import (
	"fmt"
	"strings"

	"repro/internal/parallelism"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure5Result reproduces Figure 5: inference performance under varying
// intra-op parallelism (inter-op at the PyTorch default) and varying
// inter-op parallelism (intra-op at the default), for OPT-30B with s=64,
// n=8 on the dual-Xeon 6330 host.
type Figure5Result struct {
	IntraOp []parallelism.SweepPoint
	InterOp []parallelism.SweepPoint
}

// figure5Setup builds the §4.1 controller and operator graph.
func figure5Setup() (*parallelism.Controller, *parallelism.OpGraph, []parallelism.TransferTask, error) {
	mod, _ := motivationWorkload()
	work := trace.ParallelismStudy()
	ctrl, err := parallelism.NewController(parallelism.Xeon6330(), a100().Link.BandwidthPerDir*0.5)
	if err != nil {
		return nil, nil, nil, err
	}
	seq := work.PromptLen + work.GenLen/2
	og, err := parallelism.BuildAttentionGraph(mod, work, seq, parallelism.DefaultHeadGroups)
	if err != nil {
		return nil, nil, nil, err
	}
	transfers := figure5Transfers(work)
	return ctrl, og, transfers, nil
}

// figure5Transfers approximates the five load/store tasks' per-layer-step
// volumes for the study configuration (attention offloaded, wg=55%).
func figure5Transfers(work trace.Workload) []parallelism.TransferTask {
	mod, _ := motivationWorkload()
	actBytes := float64(mod.ActivationBytes(work))
	return []parallelism.TransferTask{
		{Name: "load_weight", Bytes: float64(mod.LayerWeightBytes()) * 0.45},
		{Name: "load_cache", Bytes: 0}, // attention offloaded
		{Name: "store_cache", Bytes: 0},
		{Name: "load_activation", Bytes: actBytes},
		{Name: "store_activation", Bytes: actBytes},
	}
}

// Figure5 runs both sweeps.
func Figure5() (*Figure5Result, error) {
	ctrl, og, transfers, err := figure5Setup()
	if err != nil {
		return nil, err
	}
	intra, err := ctrl.SweepIntraOp(og, transfers, []int{1, 2, 4, 8, 16, 32, 56})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 5 intra sweep: %w", err)
	}
	inter, err := ctrl.SweepInterOp(og, transfers, []int{1, 2, 4, 8, 12, 16, 24, 32, 64, 112})
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 5 inter sweep: %w", err)
	}
	return &Figure5Result{IntraOp: intra, InterOp: inter}, nil
}

// BestInterOp returns the inter-op parallelism with the highest throughput.
func (r *Figure5Result) BestInterOp() int {
	best, bestT := 0, 0.0
	for _, p := range r.InterOp {
		if p.Throughput > bestT {
			best, bestT = p.Parallelism, p.Throughput
		}
	}
	return best
}

// Format renders both series normalized to their best point.
func (r *Figure5Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 5: performance vs thread-level parallelism (OPT-30B, s=64, n=8)\n")
	norm := func(pts []parallelism.SweepPoint) float64 {
		m := 0.0
		for _, p := range pts {
			if p.Throughput > m {
				m = p.Throughput
			}
		}
		return m
	}
	t1 := stats.NewTable("intra-op threads", "relative tput", "step ms")
	m := norm(r.IntraOp)
	for _, p := range r.IntraOp {
		t1.AddRowf("%d\t%.2f\t%.2f", p.Parallelism, p.Throughput/m, p.StepTime*1e3)
	}
	b.WriteString(t1.String())
	b.WriteString("\n")
	t2 := stats.NewTable("inter-op parallelism", "relative tput", "step ms")
	m = norm(r.InterOp)
	for _, p := range r.InterOp {
		t2.AddRowf("%d\t%.2f\t%.2f", p.Parallelism, p.Throughput/m, p.StepTime*1e3)
	}
	b.WriteString(t2.String())
	b.WriteString(fmt.Sprintf("best inter-op parallelism: %d (paper: 12)\n", r.BestInterOp()))
	return b.String()
}
