package experiments

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/perfmodel"
)

// loadThresholds parses testdata/workload_thresholds.csv — the pinned
// per-estimator ceilings on worst-cell median q-error that CI enforces.
func loadThresholds(t *testing.T) map[string]float64 {
	t.Helper()
	raw, err := os.ReadFile("testdata/workload_thresholds.csv")
	if err != nil {
		t.Fatalf("read thresholds: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "estimator,max_median" {
		t.Fatalf("thresholds header = %q, want estimator,max_median", lines[0])
	}
	out := map[string]float64{}
	for _, line := range lines[1:] {
		parts := strings.Split(strings.TrimSpace(line), ",")
		if len(parts) != 2 {
			t.Fatalf("malformed threshold row %q", line)
		}
		v, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			t.Fatalf("threshold %q: %v", line, err)
		}
		out[parts[0]] = v
	}
	return out
}

// TestWorkloadGridThresholds replays the reduced grid (the CI -race
// configuration) and fails if any estimator's worst-cell median q-error
// regresses past its pinned threshold, or if the committed acceptance bar
// (calm/diurnal peak_arena and tpot ≤ 2.0) breaks.
func TestWorkloadGridThresholds(t *testing.T) {
	r, err := WorkloadGrid(16, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.CheckAcceptance(); err != nil {
		t.Errorf("acceptance: %v", err)
	}
	thresholds := loadThresholds(t)
	for _, est := range []string{perfmodel.EstPeakArena, perfmodel.EstTPOT, perfmodel.EstPrefill} {
		if _, ok := thresholds[est]; !ok {
			t.Errorf("thresholds file missing estimator %s", est)
		}
	}
	for est, max := range thresholds {
		worst := r.WorstMedian(est)
		if worst == 0 && est != perfmodel.EstDrain {
			// Drain legitimately records nothing on calm cells with no
			// post-arrival backlog; everything else must score every run.
			t.Errorf("estimator %s never scored on the reduced grid", est)
		}
		if worst > max {
			t.Errorf("estimator %s worst-cell median q-error %.2f exceeds pinned %.2f", est, worst, max)
		}
	}
	// Every cell must have actually served its trace: the reduced grid runs
	// calm profiles only, so nothing should shed.
	for _, c := range r.Cells {
		if c.Completed != c.Requests || c.Shed != 0 {
			t.Errorf("%s: completed %d shed %d of %d requests", c.cellLabel(), c.Completed, c.Shed, c.Requests)
		}
	}
	// CSV shape: header plus one row per cell × estimator.
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if want := 1 + len(r.Cells)*len(workloadEstimators); len(lines) != want {
		t.Errorf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(csv, "workload,policy,profile,requests,completed,shed,estimator,count,q50,q95,qmax\n") {
		t.Errorf("CSV header = %q", lines[0])
	}
}
