// Package experiments regenerates every table and figure of the paper's
// evaluation (§3.1 and §5). Each experiment is a pure function from the
// built-in platform/model descriptions to a typed result with a Format
// method that prints rows in the paper's layout; cmd/lmo-bench and the root
// benchmark suite drive them.
//
// Absolute numbers come from this repository's calibrated models and
// simulators, not the authors' testbed; EXPERIMENTS.md records the
// paper-versus-measured comparison for every entry.
package experiments

import (
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/trace"
)

// a100 returns the single-GPU evaluation platform (Table 4).
func a100() *hw.Platform { return hw.SingleGPUA100() }

// v100s returns the multi-GPU evaluation platform (Table 4).
func v100s() *hw.Platform { return hw.MultiGPUV100() }

// motivationWorkload is the §3.1 setup: OPT-30B, s=64, n=128, bsz=64,
// bls=640.
func motivationWorkload() (model.Config, trace.Workload) {
	return model.OPT30B, trace.PaperDefault()
}

// estimate builds an estimator for the motivation setup, panicking on
// programmer error (the inputs are all compile-time constants).
func estimate(s perfmodel.Strategy, exec perfmodel.ExecProfile) *perfmodel.Estimator {
	mod, work := motivationWorkload()
	e, err := perfmodel.New(a100(), mod, work, s, exec)
	if err != nil {
		panic(err)
	}
	return e
}
