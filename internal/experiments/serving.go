package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
)

// ServingRow is one batching discipline under the shared arrival trace.
type ServingRow struct {
	Discipline string
	Requests   int
	Tokens     int64
	Wall       time.Duration
	TokPerSec  float64
	TTFTMean   time.Duration
	TTFTP99    time.Duration
	// AvgOccupancy is the mean number of busy slots per decode step; the gap
	// between disciplines is the slots static batching leaves idle while it
	// drains a wave.
	AvgOccupancy float64
}

// ServingResult compares static-wave batching against continuous batching on
// the real engine under one seeded Poisson arrival trace. Static batching
// admits up to `slots` queued requests, then runs the wave until every
// member finishes before admitting again — short requests hold their slot
// idle while the longest drains. Continuous batching (internal/serve) joins
// waiting requests into free slots at each decode-step boundary, so
// occupancy stays high and time-to-first-token stops queuing behind the
// slowest neighbour.
type ServingResult struct {
	Model    model.Config
	Slots    int
	Requests int
	Rows     []ServingRow
}

// servingArrival is one offline-generated request: an arrival offset from
// t=0, a prompt, and a generation budget.
type servingArrival struct {
	at     time.Duration
	prompt []int
	budget int
}

func servingTrace(seed int64, n, vocab int, meanGap time.Duration) []servingArrival {
	rng := rand.New(rand.NewSource(seed))
	var out []servingArrival
	at := time.Duration(0)
	for i := 0; i < n; i++ {
		at += time.Duration(rng.ExpFloat64() * float64(meanGap))
		prompt := make([]int, 2+rng.Intn(6))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		// Heavily ragged budgets: most requests are short, a few are long —
		// the distribution that makes wave draining expensive.
		budget := 2 + rng.Intn(8)
		if rng.Intn(4) == 0 {
			budget = 24 + rng.Intn(24)
		}
		out = append(out, servingArrival{at: at, prompt: prompt, budget: budget})
	}
	return out
}

// ServingThroughput runs both disciplines on the Small model with the given
// slot count over n Poisson arrivals. Small (not Tiny) is deliberate: its
// per-step weight streaming is the fixed cost continuous batching amortizes
// across occupied slots, which is the regime the offloading serving story
// lives in.
func ServingThroughput(slots, n int) (*ServingResult, error) {
	cfg := model.Small()
	trace := servingTrace(20240806, n, cfg.Vocab, 15*time.Millisecond)
	out := &ServingResult{Model: cfg, Slots: slots, Requests: n}

	static, err := runServingStatic(cfg, slots, trace)
	if err != nil {
		return nil, fmt.Errorf("experiments: serving static: %w", err)
	}
	cont, err := runServingContinuous(cfg, slots, trace)
	if err != nil {
		return nil, fmt.Errorf("experiments: serving continuous: %w", err)
	}
	out.Rows = []ServingRow{*static, *cont}
	return out, nil
}

func servingEngine(cfg model.Config, slots int) (*runtime.Engine, error) {
	const seed = 424242
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	pol := runtime.Policy{IntraOp: 4, Prefetch: true, GPUBatch: slots}
	return runtime.NewEngine(m, pol, 1<<31, threadpool.MustNew(4))
}

// runServingStatic is the baseline: wave-at-a-time admission over the same
// Session primitive the continuous scheduler uses, so the only difference
// measured is the admission discipline.
func runServingStatic(cfg model.Config, slots int, trace []servingArrival) (*ServingRow, error) {
	eng, err := servingEngine(cfg, slots)
	if err != nil {
		return nil, err
	}
	sess, err := eng.NewSession(slots)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	start := time.Now()
	var ttfts []time.Duration
	var tokens int64
	var busySteps, occupancy int64
	next := 0
	for next < len(trace) {
		// Wait for at least one arrival, then admit everything that has
		// arrived, up to a full wave.
		if wait := trace[next].at - time.Since(start); wait > 0 {
			time.Sleep(wait)
		}
		type member struct{ slot, budget, produced int }
		var wave []member
		for next < len(trace) && len(wave) < slots && trace[next].at <= time.Since(start) {
			a := trace[next]
			slot := len(wave)
			if _, err := sess.Admit(ctx, slot, a.prompt); err != nil {
				return nil, err
			}
			tokens++
			ttfts = append(ttfts, time.Since(start)-a.at)
			if a.budget <= 1 { // prefill token already satisfied the budget
				sess.Retire(slot)
			} else {
				wave = append(wave, member{slot: slot, budget: a.budget, produced: 1})
			}
			next++
		}
		// Run the wave to completion; nobody joins mid-flight.
		for sess.NumActive() > 0 {
			toks, err := sess.Step(ctx)
			if err != nil {
				return nil, err
			}
			busySteps++
			occupancy += int64(len(toks))
			for _, st := range toks {
				tokens++
				for i := range wave {
					if wave[i].slot == st.Slot {
						wave[i].produced++
						if wave[i].produced >= wave[i].budget {
							sess.Retire(st.Slot)
						}
					}
				}
			}
		}
	}
	row := &ServingRow{
		Discipline: "static-wave",
		Requests:   len(trace),
		Tokens:     tokens,
		Wall:       time.Since(start),
	}
	row.TokPerSec = float64(tokens) / row.Wall.Seconds()
	row.TTFTMean, _, row.TTFTP99 = servingQuantiles(ttfts)
	if busySteps > 0 {
		row.AvgOccupancy = float64(occupancy) / float64(busySteps)
	}
	return row, nil
}

// runServingContinuous replays the same trace through the continuous-batching
// scheduler.
func runServingContinuous(cfg model.Config, slots int, trace []servingArrival) (*ServingRow, error) {
	eng, err := servingEngine(cfg, slots)
	if err != nil {
		return nil, err
	}
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = slots
	scfg.QueueDepth = len(trace)
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	var (
		mu     sync.Mutex
		ttfts  []time.Duration
		tokens int64
		firstE error
	)
	var wg sync.WaitGroup
	for _, a := range trace {
		wg.Add(1)
		go func(a servingArrival) {
			defer wg.Done()
			if wait := a.at - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
			st, err := sched.Submit(context.Background(), serve.Request{Prompt: a.prompt, MaxNewTokens: a.budget})
			if err != nil {
				mu.Lock()
				if firstE == nil {
					firstE = err
				}
				mu.Unlock()
				return
			}
			first := true
			var n int64
			var ttft time.Duration
			for range st.Tokens() {
				if first {
					ttft = time.Since(start) - a.at
					first = false
				}
				n++
			}
			mu.Lock()
			tokens += n
			ttfts = append(ttfts, ttft)
			mu.Unlock()
		}(a)
	}
	wg.Wait()
	wall := time.Since(start)
	m := sched.Metrics()
	sched.Close()
	if firstE != nil {
		return nil, firstE
	}
	row := &ServingRow{
		Discipline:   "continuous",
		Requests:     len(trace),
		Tokens:       tokens,
		Wall:         wall,
		AvgOccupancy: m.Serve.AvgOccupancy,
	}
	row.TokPerSec = float64(tokens) / wall.Seconds()
	row.TTFTMean, _, row.TTFTP99 = servingQuantiles(ttfts)
	return row, nil
}

func servingQuantiles(samples []time.Duration) (mean, p50, p99 time.Duration) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return sum / time.Duration(len(sorted)), sorted[len(sorted)/2], sorted[(len(sorted)*99)/100]
}

// Format renders the discipline comparison.
func (r *ServingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving throughput: static-wave vs continuous batching (%s, %d slots, %d Poisson arrivals)\n",
		r.Model.Name, r.Slots, r.Requests)
	t := stats.NewTable("discipline", "tok/s", "TTFT mean", "TTFT p99", "occupancy", "wall")
	for _, row := range r.Rows {
		t.AddRowf("%s\t%.1f\t%v\t%v\t%.2f\t%v",
			row.Discipline, row.TokPerSec,
			row.TTFTMean.Round(time.Microsecond), row.TTFTP99.Round(time.Microsecond),
			row.AvgOccupancy, row.Wall.Round(time.Millisecond))
	}
	b.WriteString(t.String())
	b.WriteString("continuous batching refills slots at decode-step boundaries, roughly doubling occupancy\n")
	b.WriteString("and cutting mean TTFT vs draining each wave to its slowest member; tok/s is near parity\n")
	b.WriteString("here because this functional engine's step cost is compute-bound (scales with occupancy) —\n")
	b.WriteString("the throughput gap widens with the fixed per-step cost (weight streaming) a real GPU has\n")
	return b.String()
}

// CSV emits the comparison for plotting.
func (r *ServingResult) CSV() string {
	var b strings.Builder
	b.WriteString("discipline,requests,tokens,tok_s,ttft_mean_us,ttft_p99_us,avg_occupancy,wall_ms\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.1f,%.1f,%.3f,%.2f\n",
			row.Discipline, row.Requests, row.Tokens, row.TokPerSec,
			float64(row.TTFTMean)/float64(time.Microsecond), float64(row.TTFTP99)/float64(time.Microsecond),
			row.AvgOccupancy, float64(row.Wall)/float64(time.Millisecond))
	}
	return b.String()
}
