package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ClusterRow is one scenario of the cluster robustness bench.
type ClusterRow struct {
	Scenario     string
	Mode         string // "live" (in-process replicas) or "sim" (fleet DES)
	Hedge        string // "on", "off", or "-" when not the variable under test
	Offered      int
	Completed    int
	Failed       int
	Availability float64
	Failovers    int64
	Hedges       int64
	HedgeWins    int64
	// TTFT percentiles in seconds over completed requests (0 when the
	// scenario does not measure latency).
	TTFTp50 float64
	TTFTp99 float64
}

// ClusterResult is the cluster bench: a live three-replica run with one
// replica killed and restarted mid-trace (the availability gate), the fleet
// simulator's hedging A/B under a silently slow replica (the tail-latency
// gate), and a 128-replica chaos run showing the same policy at a scale the
// live harness cannot reach.
type ClusterResult struct {
	Rows []ClusterRow
	// ExactChecked counts live routed outputs re-verified token-exact
	// against a dedicated solo replay.
	ExactChecked int
}

const clusterSeed = 424242

// clusterEngine builds one replica's engine from the shared seed, so every
// replica (and the solo reference) is the identical deployment.
func clusterEngine() (*runtime.Engine, error) {
	m, err := model.NewModel(rand.New(rand.NewSource(clusterSeed)), model.Tiny())
	if err != nil {
		return nil, err
	}
	return runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
}

// clusterSolo regenerates one prompt offline — the token-exactness reference
// for routed output.
func clusterSolo(prompt []int, budget int) ([]int, error) {
	eng, err := clusterEngine()
	if err != nil {
		return nil, err
	}
	out, err := eng.Generate(context.Background(), [][]int{prompt}, budget)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// clusterLiveKill drives n Poisson requests at three live replicas, kills
// replica 0 a third of the way through the trace, and restarts it at two
// thirds. Every request must end with a definite status; availability is the
// completed fraction. A sample of completed outputs is verified token-exact
// against solo replays.
func clusterLiveKill(n int) (ClusterRow, int, error) {
	// Hedging stays off here so failover — not a hedge promotion — is the
	// rescue path under test; the hedging A/B has its own simulated rows.
	row := ClusterRow{Scenario: "kill-1-of-3", Mode: "live", Hedge: "off", Offered: n}

	vocab := model.Tiny().Vocab
	cfg := serve.DefaultConfig(vocab)
	cfg.Slots = 2
	cfg.QueueDepth = 2 * n // the kill, not queue pressure, is the variable
	cfg.MaxNewTokens = 16
	cfg.DefaultNewTokens = 6
	cfg.AdmissionControl = false

	reps := make([]*cluster.Replica, 3)
	scheds := make([]*serve.Scheduler, 3)
	for i := range reps {
		eng, err := clusterEngine()
		if err != nil {
			return row, 0, err
		}
		s, err := serve.New(eng, cfg)
		if err != nil {
			return row, 0, err
		}
		scheds[i] = s
		reps[i] = cluster.NewReplica(fmt.Sprintf("r%d", i), s, nil)
	}
	defer func() {
		for _, s := range scheds {
			s.Close()
		}
	}()
	c, err := cluster.New(reps, cfg, cluster.Options{})
	if err != nil {
		return row, 0, err
	}

	type outcome struct {
		prompt []int
		budget int
		out    []int
		ttft   time.Duration
		ok     bool
	}
	results := make([]outcome, n)
	rng := rand.New(rand.NewSource(clusterSeed + 1))
	var rejected int
	var firstBad error
	var mu sync.Mutex
	var wg sync.WaitGroup
	consume := func(i int, t0 time.Time, st *cluster.Stream, err error) {
		defer wg.Done()
		if err == nil {
			var ttft time.Duration
			for range st.Tokens() {
				if ttft == 0 {
					ttft = time.Since(t0)
				}
			}
			var out []int
			out, err = st.Wait()
			if err == nil {
				results[i].out = out
				results[i].ttft = ttft
				results[i].ok = true
				return
			}
		}
		mu.Lock()
		defer mu.Unlock()
		var ovl *serve.OverloadError
		switch {
		case errors.As(err, &ovl), errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrClosed):
			rejected++
		default:
			if firstBad == nil {
				firstBad = err
			}
		}
	}
	victim := 0
	for i := 0; i < n; i++ {
		prompt := make([]int, 4+rng.Intn(10))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		budget := 6 + rng.Intn(8)
		results[i] = outcome{prompt: prompt, budget: budget}
		wg.Add(1)
		if i == n/3 {
			// The kill: submit this request synchronously, then take down
			// whichever replica it routed to while it is still in flight —
			// the failover path, not scheduling luck, is under test.
			t0 := time.Now()
			st, err := c.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: budget})
			if err == nil && len(st.Replicas()) > 0 {
				victim = st.Replicas()[0]
			}
			go consume(i, t0, st, err)
			c.Kill(victim)
		} else {
			if i == 2*n/3 {
				c.Restart(victim)
			}
			go func(i int) {
				t0 := time.Now()
				st, err := c.Submit(context.Background(), serve.Request{Prompt: results[i].prompt, MaxNewTokens: results[i].budget})
				consume(i, t0, st, err)
			}(i)
		}
		time.Sleep(time.Duration(rng.ExpFloat64() * float64(3*time.Millisecond)))
	}
	wg.Wait()
	c.Wait()

	if firstBad != nil {
		return row, 0, fmt.Errorf("experiments: cluster live request ended without a definite status: %w", firstBad)
	}
	var ttfts []float64
	exact := 0
	for i := range results {
		if !results[i].ok {
			continue
		}
		row.Completed++
		ttfts = append(ttfts, results[i].ttft.Seconds())
		// Verify a spread sample token-exact against solo replays (replays
		// build a fresh engine each, so bound the count).
		if exact < 6 && i%(n/6+1) == 0 {
			want, err := clusterSolo(results[i].prompt, results[i].budget)
			if err != nil {
				return row, 0, err
			}
			if len(results[i].out) != len(want) {
				return row, 0, fmt.Errorf("experiments: cluster request %d routed %d tokens, solo %d", i, len(results[i].out), len(want))
			}
			for j := range want {
				if results[i].out[j] != want[j] {
					return row, 0, fmt.Errorf("experiments: cluster request %d diverged from solo at token %d", i, j)
				}
			}
			exact++
		}
	}
	row.Failed = n - row.Completed - rejected
	row.Availability = float64(row.Completed) / float64(n)
	m := c.Metrics()
	row.Failovers, row.Hedges, row.HedgeWins = m.Failovers, m.Hedges, m.HedgeWins
	sort.Float64s(ttfts)
	row.TTFTp50 = clusterPercentile(ttfts, 0.50)
	row.TTFTp99 = clusterPercentile(ttfts, 0.99)
	return row, exact, nil
}

// clusterFleetBase is the simulated counterpart of the live deployment:
// three 4-slot replicas under Poisson load with fitted per-token costs.
func clusterFleetBase() sim.FleetConfig {
	return sim.FleetConfig{
		Replicas:         3,
		Slots:            4,
		Requests:         2000,
		ArrivalRate:      400,
		PromptLen:        64,
		GenLen:           32,
		PrefillTokenCost: 40e-6,
		TokenCost:        300e-6,
		Seed:             1,
	}
}

func clusterFleetRow(scenario, hedge string, cfg sim.FleetConfig) (ClusterRow, error) {
	res, err := sim.RunFleet(cfg)
	if err != nil {
		return ClusterRow{}, fmt.Errorf("experiments: cluster fleet %s: %w", scenario, err)
	}
	return ClusterRow{
		Scenario:     scenario,
		Mode:         "sim",
		Hedge:        hedge,
		Offered:      res.Offered,
		Completed:    res.Completed,
		Failed:       res.Failed,
		Availability: res.Availability,
		Failovers:    int64(res.Failovers),
		Hedges:       int64(res.Hedges),
		HedgeWins:    int64(res.HedgeWins),
		TTFTp50:      res.TTFTp50,
		TTFTp99:      res.TTFTp99,
	}, nil
}

// ClusterBench runs the cluster robustness suite with n live requests. It
// errors — rather than just reporting — when an acceptance gate fails: live
// availability under a one-of-three kill must stay >= 99%, and hedging must
// improve simulated p99 TTFT under a silently slow replica.
func ClusterBench(n int) (*ClusterResult, error) {
	out := &ClusterResult{}

	live, exact, err := clusterLiveKill(n)
	if err != nil {
		return nil, err
	}
	if live.Availability < 0.99 {
		return nil, fmt.Errorf("experiments: cluster live availability %.4f under one-of-three kill, want >= 0.99", live.Availability)
	}
	out.Rows = append(out.Rows, live)
	out.ExactChecked = exact

	// Fleet kill: the same scenario at simulated scale and determinism.
	kill := clusterFleetBase()
	kill.Down = []sim.FleetWindow{{Replica: 0, Start: 0.5, Duration: 2.0}}
	row, err := clusterFleetRow("kill-1-of-3", "off", kill)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)

	// Hedging A/B: one replica serves 20x slow but its health still reads Up
	// (the undetected-degradation regime), so score-based routing keeps
	// feeding it. Hedged second attempts are the only defense.
	slow := clusterFleetBase()
	slow.Slow = []sim.FleetWindow{{Replica: 0, Start: 0.2, Duration: 3.0, Factor: 20, Silent: true}}
	plain, err := clusterFleetRow("silent-20x-slow", "off", slow)
	if err != nil {
		return nil, err
	}
	slow.Hedge = true
	hedged, err := clusterFleetRow("silent-20x-slow", "on", slow)
	if err != nil {
		return nil, err
	}
	if hedged.TTFTp99 >= plain.TTFTp99 {
		return nil, fmt.Errorf("experiments: hedging did not improve p99 TTFT: %.4fs hedged vs %.4fs plain", hedged.TTFTp99, plain.TTFTp99)
	}
	out.Rows = append(out.Rows, plain, hedged)

	// Fleet scale: 128 replicas, two kills and a slowdown, 20k requests.
	big := clusterFleetBase()
	big.Replicas = 128
	big.Requests = 20000
	big.ArrivalRate = 20000
	big.PrefixGroups = 64
	big.Hedge = true
	big.Down = []sim.FleetWindow{
		{Replica: 3, Start: 0.2, Duration: 0.5},
		{Replica: 77, Start: 0.4, Duration: 0.3},
	}
	big.Slow = []sim.FleetWindow{{Replica: 9, Start: 0.1, Duration: 0.8, Factor: 10}}
	row, err = clusterFleetRow("chaos-128x4", "on", big)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, row)
	return out, nil
}

// Format renders the scenario table.
func (r *ClusterResult) Format() string {
	var b strings.Builder
	b.WriteString("Cluster robustness: availability and tail latency under replica faults\n")
	fmt.Fprintf(&b, "live = 3 in-process replicas (%d routed outputs verified token-exact vs solo)\n", r.ExactChecked)
	b.WriteString("sim  = fleet discrete-event run of the same routing policy\n")
	t := stats.NewTable("scenario", "mode", "hedge", "offered", "completed", "failed", "avail", "failovers", "hedges(wins)", "p50 ttft", "p99 ttft")
	for _, c := range r.Rows {
		t.AddRowf("%s\t%s\t%s\t%d\t%d\t%d\t%.2f%%\t%d\t%d(%d)\t%s\t%s",
			c.Scenario, c.Mode, c.Hedge, c.Offered, c.Completed, c.Failed,
			c.Availability*100, c.Failovers, c.Hedges, c.HedgeWins,
			clusterDur(c.TTFTp50), clusterDur(c.TTFTp99))
	}
	b.WriteString(t.String())
	return b.String()
}

// CSV emits the scenario grid for plotting.
func (r *ClusterResult) CSV() string {
	var b strings.Builder
	b.WriteString("scenario,mode,hedge,offered,completed,failed,availability,failovers,hedges,hedge_wins,ttft_p50_s,ttft_p99_s\n")
	for _, c := range r.Rows {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%.4f,%d,%d,%d,%.6f,%.6f\n",
			c.Scenario, c.Mode, c.Hedge, c.Offered, c.Completed, c.Failed,
			c.Availability, c.Failovers, c.Hedges, c.HedgeWins, c.TTFTp50, c.TTFTp99)
	}
	return b.String()
}

func clusterPercentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func clusterDur(s float64) string {
	return time.Duration(float64(time.Second) * s).Round(10 * time.Microsecond).String()
}
