package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/stats"
)

// Figure7Point compares FlexGen with LM-Offload's quantization-aware policy
// running WITHOUT parallelism control (the §5.3 ablation isolating the
// performance-model contribution).
type Figure7Point struct {
	Model      string
	GenLen     int
	FlexGen    float64
	NoPC       float64
	GainPct    float64 // (NoPC/FlexGen - 1) * 100
	WeightsGPU float64 // the no-PC policy's wg, showing "more weights on GPU"
}

// Figure7Result reproduces Figure 7 ("Effective Quantization"): the
// quantization-aware performance model alone beats FlexGen by 90–121% on
// the 30B models and stays effective as the model grows.
type Figure7Result struct {
	Points []Figure7Point
}

// Figure7 runs the ablation over the evaluated models.
func Figure7() (*Figure7Result, error) {
	plat := a100()
	out := &Figure7Result{}
	for _, mod := range model.Evaluated() {
		for _, n := range []int{8, 32, 128} {
			fg, err := baselines.FlexGen(plat, mod, 64, 64, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure 7 %s n=%d: %w", mod.Name, n, err)
			}
			nopc, err := baselines.LMOffloadNoPC(plat, mod, 64, 64, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: figure 7 %s n=%d: %w", mod.Name, n, err)
			}
			out.Points = append(out.Points, Figure7Point{
				Model:      mod.Name,
				GenLen:     n,
				FlexGen:    fg.Throughput(),
				NoPC:       nopc.Throughput(),
				GainPct:    (nopc.Throughput()/fg.Throughput() - 1) * 100,
				WeightsGPU: nopc.Strategy.WeightsGPUPct * 100,
			})
		}
	}
	return out, nil
}

// Format renders the ablation.
func (r *Figure7Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 7: quantization-aware modeling without parallelism control vs FlexGen\n")
	t := stats.NewTable("model", "len", "FlexGen tok/s", "LM-Offload(no PC) tok/s", "gain", "no-PC wg")
	for _, p := range r.Points {
		t.AddRowf("%s\t%d\t%.1f\t%.1f\t%.0f%%\t%.0f%%", p.Model, p.GenLen, p.FlexGen, p.NoPC, p.GainPct, p.WeightsGPU)
	}
	b.WriteString(t.String())
	b.WriteString("paper: 90-121% gains on the 30B models, consistent at larger sizes\n")
	return b.String()
}
