package experiments

import (
	"fmt"
	"strings"

	"repro/internal/model"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Figure9Series is one model's weak-scaling curves.
type Figure9Series struct {
	Model     string
	LMOffload []pipeline.Result
	FlexGen   []pipeline.Result
}

// Figure9Result reproduces Figure 9: multi-GPU weak scaling of OPT-13B and
// LLaMA-13B (s=256, n=64) on the 4xV100 platform, LM-Offload vs FlexGen.
type Figure9Result struct {
	Series []Figure9Series
	// MaxGainPct is the largest LM-Offload advantage (paper: up to 327%,
	// 112% average).
	MaxGainPct float64
	AvgGainPct float64
	// GapGrowth is (gap at 4 GPUs) / (gap at 1 GPU) for the first series
	// (paper: up to 13.9x).
	GapGrowth float64
}

// Figure9 runs the weak-scaling study.
func Figure9() (*Figure9Result, error) {
	plat := v100s()
	out := &Figure9Result{}
	var gains []float64
	for _, mod := range []model.Config{model.OPT13B, model.LLaMA13B} {
		lm, err := pipeline.WeakScaling(plat, mod, pipeline.LMOffloadConfig, 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 9 %s: %w", mod.Name, err)
		}
		fg, err := pipeline.WeakScaling(plat, mod, pipeline.FlexGenConfig, 4)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 9 %s: %w", mod.Name, err)
		}
		out.Series = append(out.Series, Figure9Series{Model: mod.Name, LMOffload: lm, FlexGen: fg})
		for i := range lm {
			gain := (lm[i].Throughput/fg[i].Throughput - 1) * 100
			gains = append(gains, gain)
			if gain > out.MaxGainPct {
				out.MaxGainPct = gain
			}
		}
	}
	out.AvgGainPct = stats.Mean(gains)
	s0 := out.Series[0]
	gap1 := s0.LMOffload[0].Throughput - s0.FlexGen[0].Throughput
	gap4 := s0.LMOffload[3].Throughput - s0.FlexGen[3].Throughput
	if gap1 > 0 {
		out.GapGrowth = gap4 / gap1
	}
	return out, nil
}

// Format renders the scaling curves.
func (r *Figure9Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 9: multi-GPU weak scaling (4x V100, s=256, n=64)\n")
	t := stats.NewTable("model", "GPUs", "LM-Offload tok/s", "FlexGen tok/s", "gain")
	for _, s := range r.Series {
		for i := range s.LMOffload {
			gain := (s.LMOffload[i].Throughput/s.FlexGen[i].Throughput - 1) * 100
			t.AddRowf("%s\t%d\t%.1f\t%.1f\t%.0f%%",
				s.Model, s.LMOffload[i].GPUs, s.LMOffload[i].Throughput, s.FlexGen[i].Throughput, gain)
		}
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "max gain %.0f%% (paper: up to 327%%), average %.0f%% (paper: 112%%), gap growth 1->4 GPUs %.1fx (paper: up to 13.9x)\n",
		r.MaxGainPct, r.AvgGainPct, r.GapGrowth)
	return b.String()
}
