package experiments

import (
	"fmt"
	"strings"

	"repro/internal/parallelism"
	"repro/internal/perfmodel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure8Result reproduces Figure 8: the execution time of the six decode
// tasks under default threading versus LM-Offload's parallelism control
// (asynchronous execution disabled for the per-task measurement), plus the
// end-to-end step time with asynchrony enabled.
type Figure8Result struct {
	// Default and Tuned are the controller's settings.
	Default, Tuned parallelism.Setting
	// TaskTimes maps task name -> [default, tuned] seconds per layer step.
	TaskNames []string
	DefaultT  []float64
	TunedT    []float64
	// ComputeReductionPct is the compute task's improvement (paper: 32%).
	ComputeReductionPct float64
	// AvgReductionPct is the mean per-task improvement (paper: 19%).
	AvgReductionPct float64
	// EndToEndReductionPct is the asynchronous end-to-end improvement
	// (paper: 38%).
	EndToEndReductionPct float64
}

// Figure8 runs the §5.4 study: OPT-30B, generation length 8, attention
// offloaded to the CPU.
func Figure8() (*Figure8Result, error) {
	ctrl, og, transfers, err := figure5Setup()
	if err != nil {
		return nil, err
	}
	def, err := ctrl.DefaultSetting(og, transfers)
	if err != nil {
		return nil, err
	}
	tuned, err := ctrl.Optimize(og, transfers)
	if err != nil {
		return nil, err
	}

	out := &Figure8Result{Default: def, Tuned: tuned}
	// Per-task times with asynchronous execution disabled: compute from the
	// controller, transfers from their volumes and thread assignments.
	out.TaskNames = append(out.TaskNames, "compute")
	out.DefaultT = append(out.DefaultT, def.ComputeTime)
	out.TunedT = append(out.TunedT, tuned.ComputeTime)
	for _, tr := range transfers {
		if tr.Bytes == 0 {
			continue
		}
		out.TaskNames = append(out.TaskNames, tr.Name)
		out.DefaultT = append(out.DefaultT, transferTimeFor(ctrl, tr, def.TransferThreads[tr.Name]))
		out.TunedT = append(out.TunedT, transferTimeFor(ctrl, tr, tuned.TransferThreads[tr.Name]))
	}

	imp := parallelism.Compare(def, tuned)
	out.ComputeReductionPct = imp.ComputeReduction * 100

	var reductions []float64
	for i := range out.DefaultT {
		if out.DefaultT[i] > 0 {
			reductions = append(reductions, 1-out.TunedT[i]/out.DefaultT[i])
		}
	}
	out.AvgReductionPct = stats.Mean(reductions) * 100

	// End-to-end with asynchrony: run the analytical model under the two
	// execution profiles for the same strategy.
	mod, _ := motivationWorkload()
	work := trace.ParallelismStudy()
	strat := perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.55}
	defProf := perfmodel.FlexGenProfile()
	tunedProf := perfmodel.LMOffloadProfile()
	eDef, err := perfmodel.New(a100(), mod, work, strat, defProf)
	if err != nil {
		return nil, err
	}
	eTuned, err := perfmodel.New(a100(), mod, work, strat, tunedProf)
	if err != nil {
		return nil, err
	}
	out.EndToEndReductionPct = (1 - eTuned.TGen()/eDef.TGen()) * 100
	return out, nil
}

// transferTimeFor mirrors the controller's transfer model for reporting.
func transferTimeFor(c *parallelism.Controller, tr parallelism.TransferTask, threads int) float64 {
	// Reuse the sweep helper indirectly: one-off computation here.
	eff := 0.55
	switch {
	case threads <= 0:
		eff = 0.10
	case threads == 2:
		eff = 0.80
	case threads >= 3:
		eff = 0.95
	}
	return tr.Bytes / (c.LinkBandwidth * eff)
}

// Format renders the per-task comparison.
func (r *Figure8Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 8: task times, default threading vs parallelism control (OPT-30B, n=8)\n")
	fmt.Fprintf(&b, "default: intra-op %d, inter-op %d; tuned: intra-op %d, inter-op %d (paper: 16/12)\n",
		r.Default.IntraOp, r.Default.InterOp, r.Tuned.IntraOp, r.Tuned.InterOp)
	t := stats.NewTable("task", "default ms", "tuned ms", "reduction")
	for i, name := range r.TaskNames {
		red := 0.0
		if r.DefaultT[i] > 0 {
			red = (1 - r.TunedT[i]/r.DefaultT[i]) * 100
		}
		t.AddRowf("%s\t%.2f\t%.2f\t%.0f%%", name, r.DefaultT[i]*1e3, r.TunedT[i]*1e3, red)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "compute reduction:   %.0f%% (paper: 32%%)\n", r.ComputeReductionPct)
	fmt.Fprintf(&b, "average reduction:   %.0f%% (paper: 19%%)\n", r.AvgReductionPct)
	fmt.Fprintf(&b, "end-to-end (async):  %.0f%% (paper: 38%%)\n", r.EndToEndReductionPct)
	return b.String()
}
