package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
)

// OverloadPhaseRow is one traffic phase of the chaos soak.
type OverloadPhaseRow struct {
	Phase     string
	Submitted int
	Completed int
	Shed      int // structured overload rejections (429/503) + queue-full
	Failed    int // anything else — must stay zero
}

// OverloadResult is the chaos soak harness: a seeded bursty trace driven at
// roughly 4x the sustainable rate against a deliberately tiny KV headroom,
// with fault injection active during the burst. It reports how the
// admission controller, pressure ladder, and circuit breaker absorbed the
// storm, and verifies a sample of completed requests token-exact against
// solo replays.
type OverloadResult struct {
	Model         model.Config
	Slots         int
	ArenaBytes    int64
	HeadroomBytes int64
	Phases        []OverloadPhaseRow

	Spilled            int64
	Evicted            int64
	Rejected429        int64
	BreakerTransitions int64
	QueuePeak          int
	PredictedPeak      int64
	ArenaPeak          int64
	EstimateRatio      float64
	// RecoverySteps is how many health evaluations the breaker needed to
	// report healthy again once the trace drained (bounded recovery).
	RecoverySteps int
	// ExactChecked is how many completed requests were re-verified
	// token-exact against a dedicated solo replay.
	ExactChecked int
}

// overloadArrival is one request of the soak trace, tagged with its phase.
type overloadArrival struct {
	at     time.Duration
	phase  int
	prompt []int
	budget int
}

// overloadPhases names the trace's three traffic regimes.
var overloadPhases = []string{"calm", "burst-4x", "recover"}

// overloadSoakTrace builds the three-phase arrival schedule: calm traffic,
// a burst arriving ~8x faster, then calm again to observe recovery.
func overloadSoakTrace(seed int64, n, vocab int) []overloadArrival {
	rng := rand.New(rand.NewSource(seed))
	var out []overloadArrival
	at := time.Duration(0)
	per := n / 3
	for i := 0; i < n; i++ {
		phase := i / per
		if phase > 2 {
			phase = 2
		}
		gap := 24 * time.Millisecond
		if phase == 1 {
			gap = 6 * time.Millisecond
		}
		at += time.Duration(rng.ExpFloat64() * float64(gap))
		prompt := make([]int, 4+rng.Intn(28))
		for j := range prompt {
			prompt[j] = rng.Intn(vocab)
		}
		out = append(out, overloadArrival{at: at, phase: phase, prompt: prompt, budget: 8 + rng.Intn(56)})
	}
	return out
}

// Overload runs the chaos soak with n requests (n is split across the three
// phases) and returns the phase breakdown plus the overload-protection
// counters.
func Overload(n int) (*OverloadResult, error) {
	cfg := model.Tiny()
	const seed = 20250806

	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	// Probe the weight working set, then size the arena to leave only 64 KiB
	// of KV headroom so the watermarks are reachable with short sequences.
	probe, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		return nil, err
	}
	const headroom = 60 << 10
	capacity := probe.ResidentBaseBytes() + probe.MaxStreamLayerBytes() + headroom

	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, capacity, threadpool.MustNew(2))
	if err != nil {
		return nil, err
	}
	inj := faults.MustNew(17, map[faults.Site]faults.Rule{
		faults.WeightTransfer: {Prob: 0.05},
		faults.KVTransfer:     {Prob: 0.04},
		faults.MemPressure:    {Prob: 0.02, Max: 4},
	})
	inj.SetActive(false)
	eng.SetFaultInjector(inj)
	eng.SetRetryConfig(runtime.RetryConfig{MaxAttempts: 4})

	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = 3
	scfg.QueueDepth = 8
	scfg.MaxPromptLen = 64
	scfg.MaxNewTokens = 64
	scfg.HostKVBudget = 1 << 20
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}

	trace := overloadSoakTrace(seed, n, cfg.Vocab)
	outs := make([][]int, len(trace))
	errs := make([]error, len(trace))
	kvq := make([]bool, len(trace))
	start := time.Now()
	var wg sync.WaitGroup
	for i, a := range trace {
		wg.Add(1)
		go func(i int, a overloadArrival) {
			defer wg.Done()
			if wait := a.at - time.Since(start); wait > 0 {
				time.Sleep(wait)
			}
			// The fault window tracks the burst: chaos arrives with the storm.
			inj.SetActive(a.phase == 1)
			st, err := sched.Submit(context.Background(), serve.Request{Prompt: a.prompt, MaxNewTokens: a.budget})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = st.Wait()
			kvq[i] = st.KVQuantized()
		}(i, a)
	}
	wg.Wait()
	inj.SetActive(false)

	out := &OverloadResult{
		Model:         cfg,
		Slots:         scfg.Slots,
		ArenaBytes:    capacity,
		HeadroomBytes: headroom,
	}
	for p, name := range overloadPhases {
		row := OverloadPhaseRow{Phase: name}
		for i, a := range trace {
			if a.phase != p {
				continue
			}
			row.Submitted++
			switch {
			case errs[i] == nil:
				row.Completed++
			case errors.Is(errs[i], serve.ErrOverloaded) || errors.Is(errs[i], serve.ErrQueueFull):
				row.Shed++
			default:
				row.Failed++
			}
		}
		out.Phases = append(out.Phases, row)
	}
	for _, row := range out.Phases {
		if row.Failed > 0 {
			return nil, fmt.Errorf("experiments: overload soak: %d requests failed with non-overload errors in phase %s", row.Failed, row.Phase)
		}
	}

	// Bounded recovery: poll health until the breaker walks back to healthy.
	for i := 1; i <= 20*scfg.HealthyStreak; i++ {
		if sched.Health() == serve.Healthy {
			out.RecoverySteps = i
			break
		}
		time.Sleep(time.Millisecond)
	}
	if out.RecoverySteps == 0 {
		return nil, fmt.Errorf("experiments: overload soak: breaker never recovered to healthy")
	}

	met := sched.Metrics()
	sched.Close()
	out.Spilled = met.Serve.Spilled
	out.Evicted = met.Serve.Evicted
	out.Rejected429 = met.Serve.Rejected429
	out.BreakerTransitions = met.BreakerTransitions
	out.QueuePeak = met.Serve.QueuePeak
	out.PredictedPeak = met.PredictedPeakBytes
	out.ArenaPeak = met.ArenaPeak
	out.EstimateRatio = met.EstimateRatio
	if out.PredictedPeak < out.ArenaPeak {
		return nil, fmt.Errorf("experiments: overload soak: admission estimate %d below actual arena peak %d",
			out.PredictedPeak, out.ArenaPeak)
	}

	// Sampled token-exactness: replay a few completed requests solo (with the
	// storage mode the ladder picked for them) and require identical tokens.
	for i := range trace {
		if out.ExactChecked >= 3 || errs[i] != nil {
			continue
		}
		want, err := overloadSoloReplay(seed, cfg, trace[i].prompt, trace[i].budget, kvq[i], scfg.LadderKV)
		if err != nil {
			return nil, err
		}
		if len(want) != len(outs[i]) {
			return nil, fmt.Errorf("experiments: overload soak: request %d length %d != solo %d", i, len(outs[i]), len(want))
		}
		for j := range want {
			if want[j] != outs[i][j] {
				return nil, fmt.Errorf("experiments: overload soak: request %d token %d = %d, solo %d", i, j, outs[i][j], want[j])
			}
		}
		out.ExactChecked++
	}
	return out, nil
}

// overloadSoloReplay regenerates one request on a dedicated fault-free
// engine, matching the KV storage mode the serving ladder chose.
func overloadSoloReplay(seed int64, cfg model.Config, prompt []int, budget int, quantized bool, qcfg quant.Config) ([]int, error) {
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 1}, 1<<30, nil)
	if err != nil {
		return nil, err
	}
	if !quantized {
		outs, err := eng.Generate(context.Background(), [][]int{prompt}, budget)
		if err != nil {
			return nil, err
		}
		return outs[0], nil
	}
	sess, err := eng.NewSession(1)
	if err != nil {
		return nil, err
	}
	if err := sess.SetQuantizeNewSlots(true, qcfg); err != nil {
		return nil, err
	}
	ctx := context.Background()
	tok, err := sess.AdmitKV(ctx, 0, prompt, true)
	if err != nil {
		return nil, err
	}
	toks := []int{tok}
	for len(toks) < budget {
		step, err := sess.Step(ctx)
		if err != nil {
			return nil, err
		}
		toks = append(toks, step[0].Token)
	}
	sess.Retire(0)
	return toks, nil
}

// Format renders the soak outcome.
func (r *OverloadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Overload soak: %s, %d slots, %d B arena (%d B KV headroom), faults during burst\n",
		r.Model.Name, r.Slots, r.ArenaBytes, r.HeadroomBytes)
	t := stats.NewTable("phase", "submitted", "completed", "shed", "failed")
	for _, row := range r.Phases {
		t.AddRowf("%s\t%d\t%d\t%d\t%d", row.Phase, row.Submitted, row.Completed, row.Shed, row.Failed)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "ladder: %d spills, %d evictions; %d structured rejections; %d breaker transitions; queue peak %d\n",
		r.Spilled, r.Evicted, r.Rejected429, r.BreakerTransitions, r.QueuePeak)
	fmt.Fprintf(&b, "admission estimate: predicted peak %d B vs actual %d B (x%.2f over-estimate, must be >= 1 and < 2)\n",
		r.PredictedPeak, r.ArenaPeak, r.EstimateRatio)
	fmt.Fprintf(&b, "recovery: healthy after %d health evaluations post-storm; %d completed requests re-verified token-exact\n",
		r.RecoverySteps, r.ExactChecked)
	b.WriteString("every shed request got a structured 429/503 with Retry-After; nothing OOMed, nothing corrupted\n")
	return b.String()
}

// CSV emits the phase breakdown.
func (r *OverloadResult) CSV() string {
	var b strings.Builder
	b.WriteString("phase,submitted,completed,shed,failed,spilled,evicted,rejected_429,breaker_transitions,estimate_ratio\n")
	for _, row := range r.Phases {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%d,%d,%d,%d,%d,%.3f\n",
			row.Phase, row.Submitted, row.Completed, row.Shed, row.Failed,
			r.Spilled, r.Evicted, r.Rejected429, r.BreakerTransitions, r.EstimateRatio)
	}
	return b.String()
}
