package experiments

import (
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/stats"
)

// Figure4Row is one strategy's per-token time decomposition.
type Figure4Row struct {
	Label string
	// Seconds per generated token across all layers.
	Quant, Dequant, Other float64
}

// Total returns the summed per-token time.
func (r Figure4Row) Total() float64 { return r.Quant + r.Dequant + r.Other }

// Figure4Result reproduces Figure 4: the inference-time breakdown into
// quantization, dequantization, and other operations for the motivation
// strategies. The paper's headline: with attention offloading the
// (de)quantization overhead is exactly zero; without it, dequantization of
// the weights and old KV cache dominates the quantization of new rows.
type Figure4Result struct {
	Rows []Figure4Row
}

// Figure4 computes the breakdown under the FlexGen execution profile.
func Figure4() (*Figure4Result, error) {
	fg := perfmodel.FlexGenProfile()
	cases := []struct {
		label string
		strat perfmodel.Strategy
	}{
		{"cpu-attn, w4", perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60, QuantWeights: true, WeightBits: 4, GroupSize: 64}},
		{"gpu-attn, w4", perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, GroupSize: 64}},
		{"gpu-attn, kv4", perfmodel.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}},
		{"gpu-attn, w4+kv4", perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}},
	}
	out := &Figure4Result{}
	for _, c := range cases {
		e := estimate(c.strat, fg)
		b := e.Breakdown()
		out.Rows = append(out.Rows, Figure4Row{
			Label:   c.label,
			Quant:   b.QuantPerToken,
			Dequant: b.DequantPerToken,
			Other:   b.OtherPerToken,
		})
	}
	return out, nil
}

// Format renders the rows with percentage shares.
func (r *Figure4Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4: per-token time breakdown (OPT-30B, s=64, n=128, bls=640)\n")
	t := stats.NewTable("strategy", "quant s", "dequant s", "other s", "quant+dequant %")
	for _, row := range r.Rows {
		share := 0.0
		if tot := row.Total(); tot > 0 {
			share = (row.Quant + row.Dequant) / tot * 100
		}
		t.AddRowf("%s\t%.4f\t%.4f\t%.4f\t%.0f%%", row.Label, row.Quant, row.Dequant, row.Other, share)
	}
	b.WriteString(t.String())
	return b.String()
}

// Row returns the labeled row, or nil.
func (r *Figure4Result) Row(label string) *Figure4Row {
	for i := range r.Rows {
		if r.Rows[i].Label == label {
			return &r.Rows[i]
		}
	}
	return nil
}
