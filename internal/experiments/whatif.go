package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/stats"
)

// WhatIfRow is one (platform, model) policy outcome.
type WhatIfRow struct {
	Platform   string
	Model      string
	Strategy   string
	WeightsGPU float64
	Throughput float64
}

// WhatIfResult asks how LM-Offload's decisions shift on a next-generation
// platform: an 80 GB H100 with PCIe 5 doubles both the capacity and the
// link, so the policy search should move weights on-device and the
// bottleneck should migrate.
type WhatIfResult struct {
	GenLen int
	Rows   []WhatIfRow
	// SpeedupByModel maps model name -> H100/A100 LM-Offload ratio.
	SpeedupByModel map[string]float64
}

// PlatformWhatIf runs LM-Offload on the paper's A100 platform and the H100
// what-if platform for the evaluated models.
func PlatformWhatIf(genLen int) (*WhatIfResult, error) {
	out := &WhatIfResult{GenLen: genLen, SpeedupByModel: map[string]float64{}}
	platforms := []*hw.Platform{hw.SingleGPUA100(), hw.SingleGPUH100()}
	for _, mod := range model.Evaluated() {
		var tputs []float64
		for _, plat := range platforms {
			sys, err := baselines.LMOffload(plat, mod, 64, 64, genLen)
			if err != nil {
				return nil, fmt.Errorf("experiments: what-if %s on %s: %w", mod.Name, plat.Name, err)
			}
			out.Rows = append(out.Rows, WhatIfRow{
				Platform:   plat.Name,
				Model:      mod.Name,
				Strategy:   sys.Strategy.String(),
				WeightsGPU: sys.Strategy.WeightsGPUPct * 100,
				Throughput: sys.Throughput(),
			})
			tputs = append(tputs, sys.Throughput())
		}
		out.SpeedupByModel[mod.Name] = tputs[1] / tputs[0]
	}
	return out, nil
}

// Format renders the comparison.
func (r *WhatIfResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Platform what-if (beyond the paper): LM-Offload on A100/PCIe4 vs H100/PCIe5, n=%d\n", r.GenLen)
	t := stats.NewTable("platform", "model", "strategy", "tok/s")
	for _, row := range r.Rows {
		t.AddRowf("%s\t%s\t%s\t%.1f", row.Platform, row.Model, row.Strategy, row.Throughput)
	}
	b.WriteString(t.String())
	for _, mod := range model.Evaluated() {
		fmt.Fprintf(&b, "%s: H100/A100 = %.2fx\n", mod.Name, r.SpeedupByModel[mod.Name])
	}
	return b.String()
}
