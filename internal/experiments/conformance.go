package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/xtrace/conformance"
)

// ConformanceResult wraps the model-conformance suite's report: every
// measured-vs-predicted comparison across the simulator, the live engine,
// and the serving layer, in one table.
type ConformanceResult struct {
	Report *conformance.Report
}

// Conformance runs the full conformance suite (sim-vs-model equality,
// calibrated engine-vs-model ordering, serve-layer bound checks).
func Conformance() (*ConformanceResult, error) {
	rep, err := conformance.Run()
	if err != nil {
		return nil, err
	}
	return &ConformanceResult{Report: rep}, nil
}

// Format renders the measured-vs-predicted table with a per-suite summary.
func (r *ConformanceResult) Format() string {
	var b strings.Builder
	b.WriteString("Model conformance: measured vs predicted (Eq. 2 task decomposition)\n\n")
	fmt.Fprintf(&b, "%-16s %-18s %-9s %-28s %12s %12s %8s  %s\n",
		"suite", "case", "check", "task", "predicted", "measured", "relerr", "verdict")
	for _, row := range r.Report.Rows {
		verdict := "pass"
		if row.Check == "error" {
			verdict = "info"
		} else if !row.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(&b, "%-16s %-18s %-9s %-28s %12.4g %12.4g %8.3f  %s\n",
			row.Suite, row.Case, row.Check, row.Task,
			row.Predicted, row.Measured, row.RelErr, verdict)
	}
	pass, fail, info := 0, 0, 0
	for _, row := range r.Report.Rows {
		switch {
		case row.Check == "error":
			info++
		case row.Pass:
			pass++
		default:
			fail++
		}
	}
	fmt.Fprintf(&b, "\n%d checks passed, %d failed, %d informational rows\n", pass, fail, info)
	return b.String()
}

// CSV renders the full row set for the CI error-table artifact.
func (r *ConformanceResult) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"suite", "case", "check", "task", "predicted", "measured", "relerr", "pass", "note"})
	for _, row := range r.Report.Rows {
		_ = w.Write([]string{
			row.Suite, row.Case, row.Check, row.Task,
			fmt.Sprintf("%.6g", row.Predicted), fmt.Sprintf("%.6g", row.Measured),
			fmt.Sprintf("%.4f", row.RelErr), strconv.FormatBool(row.Pass), row.Note,
		})
	}
	w.Flush()
	return buf.String()
}
