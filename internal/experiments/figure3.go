package experiments

import (
	"fmt"
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Figure3Bar is one offloading × quantization strategy of the motivation
// study, with throughput from both the analytical model and the
// discrete-event simulator.
type Figure3Bar struct {
	Label    string
	Strategy perfmodel.Strategy
	// PaperTput is the paper's measured value (tokens/s) where reported.
	PaperTput float64
	// ModelTput is the analytical model's prediction.
	ModelTput float64
	// SimTput is the discrete-event simulation.
	SimTput float64
}

// Figure3Result reproduces Figure 3: throughput under various offloading and
// quantization strategies for OPT-30B (s=64, n=128, bsz=64, bls=640).
type Figure3Result struct {
	Bars []Figure3Bar
}

// Figure3 runs the motivation study under the FlexGen execution profile.
func Figure3() (*Figure3Result, error) {
	fg := perfmodel.FlexGenProfile()
	cases := []struct {
		label string
		paper float64
		strat perfmodel.Strategy
	}{
		{"cpu-attn, no quant", 41, perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60}},
		{"cpu-attn, w4", 32, perfmodel.Strategy{AttnOnCPU: true, WeightsGPUPct: 0.60, QuantWeights: true, WeightBits: 4, GroupSize: 64}},
		{"gpu-attn, no quant", 46, perfmodel.Strategy{WeightsGPUPct: 0.55}},
		{"gpu-attn, w4", 35, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, GroupSize: 64}},
		{"gpu-attn, kv4", 82, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}},
		{"gpu-attn, w4+kv4", 55, perfmodel.Strategy{WeightsGPUPct: 0.55, QuantWeights: true, WeightBits: 4, QuantKV: true, KVBits: 4, GroupSize: 64}},
	}
	out := &Figure3Result{}
	for _, c := range cases {
		e := estimate(c.strat, fg)
		simRes, err := sim.SimulateDecode(e, 3)
		if err != nil {
			return nil, fmt.Errorf("experiments: figure 3 %q: %w", c.label, err)
		}
		out.Bars = append(out.Bars, Figure3Bar{
			Label:     c.label,
			Strategy:  c.strat,
			PaperTput: c.paper,
			ModelTput: e.Throughput(),
			SimTput:   simRes.Throughput,
		})
	}
	return out, nil
}

// Format renders the figure as a table.
func (r *Figure3Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 3: throughput by offloading x quantization strategy (OPT-30B, s=64, n=128, bls=640)\n")
	t := stats.NewTable("strategy", "paper tok/s", "model tok/s", "sim tok/s")
	for _, bar := range r.Bars {
		t.AddRowf("%s\t%.0f\t%.1f\t%.1f", bar.Label, bar.PaperTput, bar.ModelTput, bar.SimTput)
	}
	b.WriteString(t.String())
	return b.String()
}

// Bar returns the named bar, or nil.
func (r *Figure3Result) Bar(label string) *Figure3Bar {
	for i := range r.Bars {
		if r.Bars[i].Label == label {
			return &r.Bars[i]
		}
	}
	return nil
}
