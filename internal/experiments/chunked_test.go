package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
)

// TestChunkedSummarize4kNoTPOTOutlier is the satellite regression for the
// workload grid's TPOT scoring: a 4096-token prompt arriving over live
// summarize decode streams must not produce a TPOT outlier once chunked
// admission is on. Two pins, both stable under -race:
//
//   - the decode streams keep flowing during the long prefill (an event
//     count fixed by the scheduler's chunk/decode interleaving — monolithic
//     admission delivers ~zero tokens in that window);
//   - the EstTPOT q-error distribution stays tight, because the step-cost
//     fit is scored on the timed decode window only. Chunk compute runs in
//     the scheduler loop outside that window; a regression that leaks a
//     ~chunk-sized cost into the decode measurement inflates p95 by an
//     order of magnitude.
func TestChunkedSummarize4kNoTPOTOutlier(t *testing.T) {
	arm, outs, err := runChunkedArm(model.Tiny(), 32, 4096, 3, 96, 7103)
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if len(out) == 0 {
			t.Errorf("request %d served no tokens", i)
		}
	}
	if arm.During < 20 {
		t.Errorf("only %d background tokens delivered during the 4k prefill, want >= 20 — the arrival stalled the batch", arm.During)
	}
	if arm.TPOTQErrN == 0 {
		t.Fatal("EstTPOT never scored")
	}
	// Healthy runs sit near 2 (the occupancy-linear fit underpredicts steps
	// whose batch holds the 4k-row slot); leaking one ~chunk-sized cost into
	// the measured decode steps inflates this past 20.
	if arm.TPOTQErrP95 > 5.0 {
		t.Errorf("EstTPOT q-error p95 = %.2f, want <= 5.0 — chunk compute is leaking into the decode-step measurement", arm.TPOTQErrP95)
	}
	// Generous absolute ceiling: a chunked gap is bounded by one chunk's
	// compute (~tens of ms here), while an unchunked 4k prefill lands its
	// full multi-second duration inside a single gap.
	if arm.TPOTP99 > 2500*time.Millisecond {
		t.Errorf("background p99 inter-token gap %v — the 4k arrival produced a TPOT outlier", arm.TPOTP99)
	}
}

// TestChunkedResultFormatting pins the report surfaces on a synthetic result
// so the bench's CSV contract is cheap to check.
func TestChunkedResultFormatting(t *testing.T) {
	r := &ChunkedResult{
		Model: model.Tiny(), PromptLen: 2048, Streams: 3, DecodeLen: 96,
		TokenExact: true, P99Speedup: 24.5,
		Arms: []ChunkedArm{
			{ChunkTokens: 0, TPOTP50: time.Millisecond, TPOTP99: 2450 * time.Millisecond, TPOTMax: 2500 * time.Millisecond, LongTTFT: 2500 * time.Millisecond, Gaps: 280, TPOTQErrP95: 1.4, TPOTQErrMax: 2.1, TPOTQErrN: 200},
			{ChunkTokens: 32, TPOTP50: time.Millisecond, TPOTP99: 100 * time.Millisecond, TPOTMax: 120 * time.Millisecond, LongTTFT: 2800 * time.Millisecond, During: 150, Gaps: 280, TPOTQErrP95: 1.3, TPOTQErrMax: 1.9, TPOTQErrN: 200},
		},
	}
	if err := r.CheckAcceptance(); err != nil {
		t.Errorf("synthetic passing result failed acceptance: %v", err)
	}
	csv := r.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+len(r.Arms) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(r.Arms))
	}
	if !strings.HasPrefix(csv, "chunk_tokens,prompt_len,streams,decode_len,") {
		t.Errorf("CSV header = %q", lines[0])
	}
	if !strings.Contains(r.Format(), "acceptance:") {
		t.Error("Format lacks the acceptance verdict")
	}
	r.TokenExact = false
	if err := r.CheckAcceptance(); err == nil {
		t.Error("token-inexact result passed acceptance")
	}
}
