package experiments

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"strconv"
)

// CSV renders Table 3 as comma-separated rows for plotting.
func (r *Table3Result) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"framework", "model", "genlen", "block", "wg", "cg", "hg", "memGB", "tput", "norm"})
	for _, c := range r.Cells {
		_ = w.Write([]string{
			c.Framework, c.Model, strconv.Itoa(c.GenLen), strconv.Itoa(c.BlockSize),
			fmt.Sprintf("%.0f", c.WG), fmt.Sprintf("%.0f", c.CG), fmt.Sprintf("%.0f", c.HG),
			fmt.Sprintf("%.1f", c.MemGB), fmt.Sprintf("%.2f", c.Throughput), fmt.Sprintf("%.3f", c.NormTput),
		})
	}
	w.Flush()
	return buf.String()
}

// CSV renders the Figure 5 sweeps: series, parallelism, throughput.
func (r *Figure5Result) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"series", "parallelism", "stepSeconds", "throughput"})
	for _, p := range r.IntraOp {
		_ = w.Write([]string{"intra-op", strconv.Itoa(p.Parallelism), fmt.Sprintf("%.6f", p.StepTime), fmt.Sprintf("%.4f", p.Throughput)})
	}
	for _, p := range r.InterOp {
		_ = w.Write([]string{"inter-op", strconv.Itoa(p.Parallelism), fmt.Sprintf("%.6f", p.StepTime), fmt.Sprintf("%.4f", p.Throughput)})
	}
	w.Flush()
	return buf.String()
}

// CSV renders the Figure 9 weak-scaling curves.
func (r *Figure9Result) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"model", "gpus", "framework", "tput"})
	for _, s := range r.Series {
		for i := range s.LMOffload {
			_ = w.Write([]string{s.Model, strconv.Itoa(s.LMOffload[i].GPUs), "LM-Offload", fmt.Sprintf("%.2f", s.LMOffload[i].Throughput)})
			_ = w.Write([]string{s.Model, strconv.Itoa(s.FlexGen[i].GPUs), "FlexGen", fmt.Sprintf("%.2f", s.FlexGen[i].Throughput)})
		}
	}
	w.Flush()
	return buf.String()
}

// CSV renders the scale sweep.
func (r *ScaleResult) CSV() string {
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	_ = w.Write([]string{"model", "paramsB", "feasible", "flexgen", "zero", "lmoffload"})
	for _, p := range r.Points {
		_ = w.Write([]string{
			p.Model, fmt.Sprintf("%.1f", p.ParamsB), strconv.FormatBool(p.Feasible),
			fmt.Sprintf("%.2f", p.FlexGen), fmt.Sprintf("%.2f", p.ZeRO), fmt.Sprintf("%.2f", p.LM),
		})
	}
	w.Flush()
	return buf.String()
}
