package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adapt"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
)

// DriftRunRow is one run of the online-adaptation experiment.
type DriftRunRow struct {
	Run          string
	StartIntraOp int
	FinalIntraOp int
	// BaselineTPOT is the pre-drift stable anchor; DriftedTPOT the windowed
	// median right after detection; FinalTPOT the settled post-run median.
	// All seconds per token; zero when the phase does not apply to the run.
	BaselineTPOT float64
	DriftedTPOT  float64
	FinalTPOT    float64
	Swaps        int64
	Commits      int64
	Rollbacks    int64
	Served       int64
}

// DriftResult is the online self-tuning experiment: the same live scheduler
// and injected machine slowdown, three ways.
//
//   - adaptive: the adapt controller detects the drift, re-searches, swaps at
//     a step boundary, and the canary commits. Its settled TPOT is the
//     recovery headline.
//   - fresh-fit: the policy the adaptive run converged to, installed from the
//     start under the same slowdown — the oracle the adaptive run is scored
//     against. Recovery gate: adaptive settled TPOT <= 1.25x fresh-fit.
//   - poisoned: the searcher is poisoned (confidently proposes a policy whose
//     predicted gain never materializes — the world degrades further during
//     the canary window), so the canary must measure the regression and roll
//     the swap back, restoring the pre-swap policy.
type DriftResult struct {
	Model         model.Config
	SlowdownX     float64
	Rows          []DriftRunRow
	RecoveryRatio float64 // adaptive FinalTPOT / fresh-fit FinalTPOT
	RecoveryGate  float64 // the 1.25 acceptance bound
	// PoisonRestored records that the poisoned run's rollback restored the
	// exact pre-swap execution policy.
	PoisonRestored bool
}

// fixedSearcher always proposes the given width with a confident gain — the
// experiment's stand-in for a full autotune pass (the policy it would find on
// this 2-worker toy plant is known).
type fixedSearcher struct {
	intra int
	gain  float64
}

func (s fixedSearcher) Search(factor float64, cur runtime.ExecPolicy) (adapt.Candidate, error) {
	next := cur
	next.IntraOp = s.intra
	return adapt.Candidate{Policy: next, PredictedGain: s.gain, Profile: "drift-exp"}, nil
}

// driftStack is one live serving stack wired for adaptation experiments.
type driftStack struct {
	sched  *serve.Scheduler
	col    *perfmodel.EstCollector
	inj    *faults.Injector
	stop   chan struct{}
	wg     sync.WaitGroup
	served atomic.Int64
}

// newDriftStack builds a tiny engine (2-worker pool) behind a scheduler with
// admission control and the TPOT estimator collector attached, then starts
// `workers` background submitters.
func newDriftStack(seed int64, startIntra, workers int) (*driftStack, error) {
	cfg := model.Tiny()
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: startIntra, Prefetch: true}, 1<<30, threadpool.MustNew(2))
	if err != nil {
		return nil, err
	}
	inj := faults.MustNew(seed, nil)
	eng.SetFaultInjector(inj)

	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = 3
	scfg.QueueDepth = 64
	scfg.MaxNewTokens = 12
	scfg.DefaultNewTokens = 12
	col := perfmodel.NewEstCollector()
	col.SetWindowSize(16)
	scfg.EstObserver = col
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}

	st := &driftStack{sched: sched, col: col, inj: inj, stop: make(chan struct{})}
	for w := 0; w < workers; w++ {
		st.wg.Add(1)
		go func(seed int64) {
			defer st.wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-st.stop:
					return
				default:
				}
				prompt := make([]int, 2+rng.Intn(4))
				for j := range prompt {
					prompt[j] = rng.Intn(cfg.Vocab)
				}
				h, err := sched.Submit(context.Background(), serve.Request{Prompt: prompt, MaxNewTokens: 4 + rng.Intn(8)})
				if err == nil {
					if _, werr := h.Wait(); werr == nil {
						st.served.Add(1)
					}
				} else {
					time.Sleep(10 * time.Millisecond)
				}
				time.Sleep(time.Duration(rng.ExpFloat64() * float64(8*time.Millisecond)))
			}
		}(seed*31 + int64(w))
	}
	return st, nil
}

func (st *driftStack) closeStack() {
	close(st.stop)
	st.wg.Wait()
	st.sched.Close()
}

// settleTPOT clears the TPOT window and returns the median once it refills —
// a regime-pure measurement of the stack's current operating point.
func (st *driftStack) settleTPOT(minSamples int, deadline time.Duration) (float64, error) {
	st.col.ResetWindow(perfmodel.EstTPOT)
	end := time.Now().Add(deadline)
	for {
		ws := st.col.WindowStats(perfmodel.EstTPOT)
		if ws.Count >= minSamples {
			return ws.ActualMedian, nil
		}
		if time.Now().After(end) {
			return 0, fmt.Errorf("experiments: drift: TPOT window never filled (%d/%d samples)", ws.Count, minSamples)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// driftWait polls cond until it holds or the deadline passes.
func driftWait(what string, deadline time.Duration, cond func() bool) error {
	end := time.Now().Add(deadline)
	for !cond() {
		if time.Now().After(end) {
			return fmt.Errorf("experiments: drift: %s never happened", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// driftAdaptConfig is the controller tuning shared by the experiment's runs:
// fast ticks so the whole lifecycle fits in seconds of wall clock.
func driftAdaptConfig() adapt.Config {
	return adapt.Config{
		Interval:        40 * time.Millisecond,
		MinSamples:      4,
		QErrThreshold:   1.4,
		RatioThreshold:  1.25,
		DriftStreak:     2,
		ClearStreak:     4,
		MinGain:         1.05,
		CanaryTicks:     3,
		CanaryRegress:   1.2,
		Cooldown:        200 * time.Millisecond,
		MaxSwapsPerHour: 1000,
		ConfirmTimeout:  3 * time.Second,
	}
}

// DriftAdapt runs the three-way online-adaptation experiment under a
// sustained `slowdown`x machine drift and gates the outcomes: the adaptive
// run must settle within 1.25x of the fresh-fit oracle, and the poisoned run
// must roll back to the exact pre-swap policy.
func DriftAdapt(slowdown float64) (*DriftResult, error) {
	if slowdown <= 1 {
		slowdown = 2
	}
	const seed = 20250808
	out := &DriftResult{Model: model.Tiny(), SlowdownX: slowdown, RecoveryGate: 1.25}

	// Run 1: adaptive. Start at width 1; the searcher proposes width 2.
	adaptive, committed, err := driftAdaptiveRun(seed, slowdown)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, adaptive)

	// Run 2: fresh-fit oracle. The committed policy from the start, same
	// slowdown from the first request.
	fresh, err := driftFreshRun(seed, slowdown, committed)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, fresh)
	if fresh.FinalTPOT <= 0 {
		return nil, fmt.Errorf("experiments: drift: fresh-fit run measured no TPOT")
	}
	out.RecoveryRatio = adaptive.FinalTPOT / fresh.FinalTPOT
	if out.RecoveryRatio > out.RecoveryGate {
		return nil, fmt.Errorf("experiments: drift: adaptive settled at %.2fx the fresh-fit oracle (gate %.2fx)",
			out.RecoveryRatio, out.RecoveryGate)
	}

	// Run 3: poisoned searcher -> canary regression -> rollback.
	poisoned, restored, err := driftPoisonedRun(seed, slowdown)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, poisoned)
	out.PoisonRestored = restored
	if !restored {
		return nil, fmt.Errorf("experiments: drift: rollback did not restore the pre-swap policy")
	}
	return out, nil
}

// driftAdaptiveRun drives drift -> detect -> swap -> canary -> commit and
// returns the settled row plus the committed policy.
func driftAdaptiveRun(seed int64, slowdown float64) (DriftRunRow, runtime.ExecPolicy, error) {
	row := DriftRunRow{Run: "adaptive", StartIntraOp: 1}
	st, err := newDriftStack(seed, 1, 4)
	if err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	defer st.closeStack()

	ctl, err := adapt.New(st.sched, st.col, fixedSearcher{intra: 2, gain: 1.4}, driftAdaptConfig())
	if err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	st.sched.SetAdaptStatsFunc(ctl.StatsMap)
	ctl.Start()
	defer ctl.Stop()

	if err := driftWait("baseline anchor", 20*time.Second, func() bool { return ctl.Status().BaselineTPOT > 0 }); err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	row.BaselineTPOT = ctl.Status().BaselineTPOT

	if err := st.inj.SetDrift(faults.SustainedSlowdown(0, slowdown)); err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	if err := driftWait("drift detection", 30*time.Second, func() bool { return ctl.Status().State != adapt.Stable }); err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	row.DriftedTPOT = ctl.Status().WindowTPOT
	if err := driftWait("canary commit", 30*time.Second, func() bool { return ctl.Status().Commits >= 1 }); err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	final, err := st.settleTPOT(12, 15*time.Second)
	if err != nil {
		return row, runtime.ExecPolicy{}, err
	}
	row.FinalTPOT = final

	status := ctl.Status()
	committed := st.sched.ExecPolicy()
	row.FinalIntraOp = committed.IntraOp
	row.Swaps = status.SwapsConfirmed
	row.Commits = status.Commits
	row.Rollbacks = status.Rollbacks
	row.Served = st.served.Load()
	if row.Served == 0 {
		return row, committed, fmt.Errorf("experiments: drift: adaptive run served nothing")
	}
	return row, committed, nil
}

// driftFreshRun measures the oracle: the committed policy installed from the
// start, the same slowdown active from the first request.
func driftFreshRun(seed int64, slowdown float64, policy runtime.ExecPolicy) (DriftRunRow, error) {
	row := DriftRunRow{Run: "fresh-fit", StartIntraOp: policy.IntraOp, FinalIntraOp: policy.IntraOp}
	st, err := newDriftStack(seed, policy.IntraOp, 4)
	if err != nil {
		return row, err
	}
	defer st.closeStack()
	if err := st.inj.SetDrift(faults.SustainedSlowdown(0, slowdown)); err != nil {
		return row, err
	}
	// Warm up past prefill-heavy startup before taking the reference window.
	time.Sleep(500 * time.Millisecond)
	final, err := st.settleTPOT(12, 15*time.Second)
	if err != nil {
		return row, err
	}
	row.FinalTPOT = final
	row.Served = st.served.Load()
	return row, nil
}

// driftPoisonedRun drives a poisoned search to a canary rollback: the
// searcher's claimed gain never materializes because the machine degrades
// further the moment the canary opens, so the canary median regresses past
// the guard and the controller restores the pre-swap policy.
func driftPoisonedRun(seed int64, slowdown float64) (DriftRunRow, bool, error) {
	row := DriftRunRow{Run: "poisoned", StartIntraOp: 2}
	st, err := newDriftStack(seed, 2, 4)
	if err != nil {
		return row, false, err
	}
	defer st.closeStack()

	cfg := driftAdaptConfig()
	// One attempt per observation window: a long cooldown keeps the
	// controller from re-searching between our rollback check and teardown.
	cfg.Cooldown = time.Minute
	ctl, err := adapt.New(st.sched, st.col, fixedSearcher{intra: 1, gain: 2.0}, cfg)
	if err != nil {
		return row, false, err
	}
	ctl.Start()
	defer ctl.Stop()

	if err := driftWait("baseline anchor", 20*time.Second, func() bool { return ctl.Status().BaselineTPOT > 0 }); err != nil {
		return row, false, err
	}
	row.BaselineTPOT = ctl.Status().BaselineTPOT
	if err := st.inj.SetDrift(faults.SustainedSlowdown(0, slowdown)); err != nil {
		return row, false, err
	}
	if err := driftWait("poisoned swap", 30*time.Second, func() bool { return ctl.Status().State == adapt.Canary }); err != nil {
		return row, false, err
	}
	row.DriftedTPOT = ctl.Status().WindowTPOT
	// The co-tenant lands mid-canary: the window the canary judges is
	// strictly worse than the pre-swap window, whatever the poisoned
	// searcher promised.
	if err := st.inj.SetDrift(faults.SustainedSlowdown(0, slowdown*4)); err != nil {
		return row, false, err
	}
	if err := driftWait("canary rollback", 30*time.Second, func() bool { return ctl.Status().Rollbacks >= 1 }); err != nil {
		return row, false, err
	}

	status := ctl.Status()
	restored := st.sched.ExecPolicy().IntraOp == row.StartIntraOp
	row.FinalIntraOp = st.sched.ExecPolicy().IntraOp
	row.FinalTPOT = status.WindowTPOT
	row.Swaps = status.SwapsConfirmed
	row.Commits = status.Commits
	row.Rollbacks = status.Rollbacks
	row.Served = st.served.Load()
	if row.Commits != 0 {
		return row, restored, fmt.Errorf("experiments: drift: poisoned run committed a canary that should have regressed")
	}
	return row, restored, nil
}

// Format renders the experiment.
func (r *DriftResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online adaptation under a sustained %.1fx machine slowdown (%s, live scheduler)\n",
		r.SlowdownX, r.Model.Name)
	t := stats.NewTable("run", "width", "baseline_tpot", "drifted_tpot", "final_tpot", "swaps", "commits", "rollbacks", "served")
	for _, row := range r.Rows {
		t.AddRowf("%s\t%d->%d\t%s\t%s\t%s\t%d\t%d\t%d\t%d",
			row.Run, row.StartIntraOp, row.FinalIntraOp,
			driftMS(row.BaselineTPOT), driftMS(row.DriftedTPOT), driftMS(row.FinalTPOT),
			row.Swaps, row.Commits, row.Rollbacks, row.Served)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "recovery: adaptive settled at %.2fx the fresh-fit oracle (gate <= %.2fx)\n",
		r.RecoveryRatio, r.RecoveryGate)
	fmt.Fprintf(&b, "poisoned: canary measured the regression and rolled back; pre-swap policy restored: %v\n",
		r.PoisonRestored)
	return b.String()
}

// CSV emits the per-run rows.
func (r *DriftResult) CSV() string {
	var b strings.Builder
	b.WriteString("run,start_intra_op,final_intra_op,baseline_tpot_s,drifted_tpot_s,final_tpot_s,swaps,commits,rollbacks,served,recovery_ratio\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.6f,%.6f,%.6f,%d,%d,%d,%d,%.3f\n",
			row.Run, row.StartIntraOp, row.FinalIntraOp,
			row.BaselineTPOT, row.DriftedTPOT, row.FinalTPOT,
			row.Swaps, row.Commits, row.Rollbacks, row.Served, r.RecoveryRatio)
	}
	return b.String()
}

func driftMS(s float64) string {
	if s <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fms", s*1e3)
}
