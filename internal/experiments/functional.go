package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/threadpool"
	"repro/internal/trace"
)

// FunctionalRow is one real engine run.
type FunctionalRow struct {
	Label string
	// Interconnect bytes actually moved.
	WeightUp, KVUp, KVDown int64
	// Quantization operations actually executed.
	QuantOps, DequantOps int64
	// MatchesReference reports bit-identical output to the unoffloaded
	// model (only expected for lossless policies).
	MatchesReference bool
}

// FunctionalResult is the executable cross-check of the paper's §3.1
// observations: the same offloading × quantization strategies as Figure 3,
// run for real on a small transformer through the offloading engine, with
// actual byte counts instead of modeled ones.
type FunctionalResult struct {
	Model model.Config
	Work  trace.Workload
	Rows  []FunctionalRow
}

// FunctionalCheck runs the engine matrix on the Small model.
func FunctionalCheck() (*FunctionalResult, error) {
	cfg := model.Small()
	work := trace.Workload{PromptLen: 8, GenLen: 8, GPUBatch: 2, NumBatches: 2}
	out := &FunctionalResult{Model: cfg, Work: work}

	const seed = 424242
	prompts := work.Prompts(rand.New(rand.NewSource(seed)), cfg.Vocab)
	pool := threadpool.MustNew(4)

	ref, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	want, err := ref.Generate(pool, 4, prompts, work.GenLen)
	if err != nil {
		return nil, err
	}

	kv4 := quant.Config{Bits: 4, GroupSize: 32}
	cases := []struct {
		label string
		pol   runtime.Policy
	}{
		{"cpu-attn, no quant", runtime.Policy{AttnOnCPU: true, IntraOp: 4, Prefetch: true, GPUBatch: work.GPUBatch}},
		{"gpu-attn, no quant", runtime.Policy{IntraOp: 4, Prefetch: true, GPUBatch: work.GPUBatch}},
		{"gpu-attn, fp16 host", runtime.Policy{IntraOp: 4, Prefetch: true, GPUBatch: work.GPUBatch, HostF16: true}},
		{"gpu-attn, kv4", runtime.Policy{QuantKV: true, KVCfg: kv4, IntraOp: 4, Prefetch: true, GPUBatch: work.GPUBatch}},
		{"gpu-attn, w4+kv4", runtime.Policy{QuantWeights: true, WeightCfg: kv4, QuantKV: true, KVCfg: kv4, IntraOp: 4, Prefetch: true, GPUBatch: work.GPUBatch}},
	}
	for _, c := range cases {
		m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
		if err != nil {
			return nil, err
		}
		eng, err := runtime.NewEngine(m, c.pol, 1<<31, pool)
		if err != nil {
			return nil, fmt.Errorf("experiments: functional %q: %w", c.label, err)
		}
		got, err := eng.Generate(context.Background(), prompts, work.GenLen)
		if err != nil {
			return nil, fmt.Errorf("experiments: functional %q: %w", c.label, err)
		}
		matches := true
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					matches = false
				}
			}
		}
		st := eng.Stats()
		out.Rows = append(out.Rows, FunctionalRow{
			Label:            c.label,
			WeightUp:         st.WeightUpBytes,
			KVUp:             st.KVUpBytes,
			KVDown:           st.KVDownBytes,
			QuantOps:         st.QuantizeOps,
			DequantOps:       st.DequantizeOps,
			MatchesReference: matches,
		})
	}
	return out, nil
}

// Row returns the labeled row, or nil.
func (r *FunctionalResult) Row(label string) *FunctionalRow {
	for i := range r.Rows {
		if r.Rows[i].Label == label {
			return &r.Rows[i]
		}
	}
	return nil
}

// Format renders the measured byte counts.
func (r *FunctionalResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Functional cross-check: real engine runs (%s, %s)\n", r.Model.Name, r.Work)
	t := stats.NewTable("policy", "weights up MB", "KV up MB", "KV down MB", "quant ops", "dequant ops", "matches ref")
	for _, row := range r.Rows {
		t.AddRowf("%s\t%.2f\t%.2f\t%.2f\t%d\t%d\t%v",
			row.Label, float64(row.WeightUp)/1e6, float64(row.KVUp)/1e6, float64(row.KVDown)/1e6,
			row.QuantOps, row.DequantOps, row.MatchesReference)
	}
	b.WriteString(t.String())
	b.WriteString("attention offloading moves zero KV bytes; KV quantization divides KV traffic ~6-8x;\n")
	b.WriteString("lossless policies reproduce the reference model token-for-token\n")
	return b.String()
}
