package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/threadpool"
)

// KernelsArm is one arm of the quantized-kernel A/B: the identical decode
// workload with the fused quantized-domain kernels off (dequantize weights
// and KV into scratch, then dense matmul) or on (consume packed blocks
// directly, dequantizing per cache-blocked tile).
type KernelsArm struct {
	Fused        bool
	TokensPerSec float64
	NsPerToken   int64
	Wall         time.Duration
	Tokens       int64

	// Quantization pass counters — the fused arm must shed every standalone
	// dequantize pass while leaving the quantize (cache append) side alone.
	DequantizeOps int64
	QuantizeOps   int64
}

// KernelsResult is the fused-kernel benchmark: both arms over the same
// model, prompts, and decode budget, gated on bit-identical tokens and a
// tokens/sec lift from eliding the dequantize round-trips.
type KernelsResult struct {
	Model     model.Config
	Streams   int
	PromptLen int
	NewTokens int
	Reps      int
	Policy    string

	// Tile choices the cachesim-driven tuner made for this model's two hot
	// matmul shapes, under the LLC geometry the replay modeled.
	LLC               tensor.LLCGeometry
	TileAttn, TileFFN tensor.Tile

	Arms       []KernelsArm // [unfused, fused]
	TokenExact bool
	Speedup    float64 // fused tok/s over unfused tok/s
}

// kernelsPrompts builds deterministic prompts so both arms (and every rep)
// decode the identical workload.
func kernelsPrompts(streams, plen, vocab int) [][]int {
	out := make([][]int, streams)
	for s := range out {
		p := make([]int, plen)
		for i := range p {
			p[i] = (s*31 + i*17 + 3) % vocab
		}
		out[s] = p
	}
	return out
}

// runKernelsArm replays one arm reps times on fresh engines and keeps the
// best-throughput rep (the usual benchmarking discipline: the minimum wall
// time is the least-noisy estimate of the kernel cost).
func runKernelsArm(cfg model.Config, pol runtime.Policy, prompts [][]int, newTokens, reps int) (KernelsArm, [][]int, error) {
	arm := KernelsArm{Fused: pol.QuantKernels}
	var ref [][]int
	for r := 0; r < reps; r++ {
		m, err := model.NewModel(rand.New(rand.NewSource(909)), cfg)
		if err != nil {
			return arm, nil, err
		}
		eng, err := runtime.NewEngine(m, pol, 1<<30, threadpool.MustNew(2))
		if err != nil {
			return arm, nil, err
		}
		out, err := eng.Generate(context.Background(), prompts, newTokens)
		if err != nil {
			return arm, nil, err
		}
		if ref == nil {
			ref = out
		} else if !tokensEqual(ref, out) {
			return arm, nil, fmt.Errorf("experiments: kernels arm fused=%v not deterministic across reps", pol.QuantKernels)
		}
		st := eng.Stats()
		if st.WallTime <= 0 || st.TokensGenerated <= 0 {
			return arm, nil, fmt.Errorf("experiments: kernels arm recorded no work")
		}
		tps := float64(st.TokensGenerated) / st.WallTime.Seconds()
		if tps > arm.TokensPerSec {
			arm.TokensPerSec = tps
			arm.Wall = st.WallTime
			arm.Tokens = st.TokensGenerated
			arm.NsPerToken = st.WallTime.Nanoseconds() / st.TokensGenerated
			arm.DequantizeOps = st.DequantizeOps
			arm.QuantizeOps = st.QuantizeOps
		}
	}
	return arm, ref, nil
}

// KernelsBench runs the quantized-domain kernel A/B on the Small functional
// model with 4-bit weights and KV cache: group-wise packed blocks are either
// expanded by standalone dequantize passes (unfused) or consumed in place by
// the tiled fused kernels (fused). The toggle is runtime.Policy.QuantKernels
// — everything else, including the RNG-seeded model and prompts, is shared.
func KernelsBench() (*KernelsResult, error) {
	cfg := model.Small()
	const (
		streams   = 4
		promptLen = 64
		newTokens = 160
		reps      = 3
	)
	q4 := quant.Config{Bits: 4, GroupSize: 64}
	pol := runtime.Policy{
		IntraOp: 2, GPUBatch: streams, Prefetch: true,
		QuantWeights: true, WeightCfg: q4,
		QuantKV: true, KVCfg: q4,
	}
	r := &KernelsResult{
		Model: cfg, Streams: streams, PromptLen: promptLen, NewTokens: newTokens, Reps: reps,
		Policy: "IntraOp=2, Prefetch, GPUBatch=4, w4g64, kv4g64",
		LLC:    tensor.LLC(),
		// The decode hot shapes: scores/context against the packed KV rows
		// (k = hidden) and the FFN up-projection (n = FFN width).
		TileAttn: tensor.TileFor(cfg.Hidden, cfg.Hidden),
		TileFFN:  tensor.TileFor(cfg.Hidden, cfg.FFN),
	}
	prompts := kernelsPrompts(streams, promptLen, cfg.Vocab)
	var ref [][]int
	for _, fused := range []bool{false, true} {
		p := pol
		p.QuantKernels = fused
		arm, outs, err := runKernelsArm(cfg, p, prompts, newTokens, reps)
		if err != nil {
			return nil, fmt.Errorf("experiments: kernels fused=%v: %w", fused, err)
		}
		if ref == nil {
			ref = outs
			r.TokenExact = true
		} else if !tokensEqual(ref, outs) {
			r.TokenExact = false
		}
		r.Arms = append(r.Arms, arm)
	}
	if r.Arms[0].TokensPerSec > 0 {
		r.Speedup = r.Arms[1].TokensPerSec / r.Arms[0].TokensPerSec
	}
	return r, nil
}

// CheckAcceptance enforces the committed bar: bit-identical tokens across
// the toggle, every standalone dequantize pass elided in the fused arm, and
// throughput at least at parity (the committed BENCH_kernels.json records
// the actual lift; the gate keeps it from regressing below break-even).
func (r *KernelsResult) CheckAcceptance() error {
	if !r.TokenExact {
		return fmt.Errorf("experiments: fused kernels changed generated tokens")
	}
	if r.Arms[1].DequantizeOps != 0 {
		return fmt.Errorf("experiments: fused arm still ran %d standalone dequantize passes", r.Arms[1].DequantizeOps)
	}
	if r.Arms[0].DequantizeOps == 0 {
		return fmt.Errorf("experiments: unfused arm ran no dequantize passes — workload is not exercising the quantized path")
	}
	if r.Arms[1].QuantizeOps != r.Arms[0].QuantizeOps {
		return fmt.Errorf("experiments: quantize (cache append) pass count changed across the toggle: %d vs %d",
			r.Arms[1].QuantizeOps, r.Arms[0].QuantizeOps)
	}
	if r.Speedup < 1.0 {
		return fmt.Errorf("experiments: fused kernels slower than dequantize-then-matmul: %.3fx", r.Speedup)
	}
	return nil
}

// Format renders the A/B table, the tuner's tile choices, and the verdict.
func (r *KernelsResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Quantized-domain kernels A/B (%s, %d streams x %d prompt + %d decode, best of %d)\n",
		r.Model.Name, r.Streams, r.PromptLen, r.NewTokens, r.Reps)
	fmt.Fprintf(&b, "policy: %s\n", r.Policy)
	t := stats.NewTable("kernels", "tok/s", "ns/token", "dequant ops", "quant ops")
	for _, a := range r.Arms {
		label := "dequant+matmul"
		if a.Fused {
			label = "fused"
		}
		t.AddRowf("%s\t%.0f\t%d\t%d\t%d", label, a.TokensPerSec, a.NsPerToken, a.DequantizeOps, a.QuantizeOps)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "tile tuner (LLC %dKiB/%d-way/%dB lines): attn k=n=%d -> KC=%d NC=%d; ffn n=%d -> KC=%d NC=%d\n",
		r.LLC.SizeBytes>>10, r.LLC.Ways, r.LLC.LineBytes,
		r.Model.Hidden, r.TileAttn.KC, r.TileAttn.NC, r.Model.FFN, r.TileFFN.KC, r.TileFFN.NC)
	fmt.Fprintf(&b, "throughput: fused %.0f tok/s vs %.0f tok/s — %.2fx, token-exact: %v\n",
		r.Arms[1].TokensPerSec, r.Arms[0].TokensPerSec, r.Speedup, r.TokenExact)
	if err := r.CheckAcceptance(); err != nil {
		fmt.Fprintf(&b, "ACCEPTANCE FAILED: %v\n", err)
	} else {
		b.WriteString("acceptance: bit-identical tokens, zero standalone dequant passes, throughput >= parity ✓\n")
	}
	return b.String()
}

// CSV emits one row per arm.
func (r *KernelsResult) CSV() string {
	var b strings.Builder
	b.WriteString("arm,tokens_per_sec,ns_per_token,dequantize_ops,quantize_ops,token_exact,speedup\n")
	for _, a := range r.Arms {
		label := "unfused"
		if a.Fused {
			label = "fused"
		}
		fmt.Fprintf(&b, "%s,%.1f,%d,%d,%d,%v,%.3f\n",
			label, a.TokensPerSec, a.NsPerToken, a.DequantizeOps, a.QuantizeOps, r.TokenExact, r.Speedup)
	}
	return b.String()
}
