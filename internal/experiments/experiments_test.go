package experiments

import (
	"strings"
	"testing"
)

func TestFigure3ReproducesOrderingAndValues(t *testing.T) {
	r, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Bars) != 6 {
		t.Fatalf("bars = %d, want 6", len(r.Bars))
	}
	get := func(label string) Figure3Bar {
		b := r.Bar(label)
		if b == nil {
			t.Fatalf("missing bar %q", label)
		}
		return *b
	}
	offNone := get("cpu-attn, no quant")
	offW := get("cpu-attn, w4")
	noNone := get("gpu-attn, no quant")
	noW := get("gpu-attn, w4")
	noKV := get("gpu-attn, kv4")
	noBoth := get("gpu-attn, w4+kv4")

	// Observation 1 in both the model and the simulator.
	if offW.ModelTput >= offNone.ModelTput {
		t.Error("model: weight quant should hurt with attention offloading")
	}
	if noKV.ModelTput <= noNone.ModelTput || noKV.SimTput <= noNone.SimTput {
		t.Error("KV quant should help without attention offloading (model and sim)")
	}
	// Observation 2 ordering in the model.
	if !(noKV.ModelTput > noBoth.ModelTput && noBoth.ModelTput > noNone.ModelTput && noNone.ModelTput > noW.ModelTput) {
		t.Errorf("Figure 3 ordering violated: kv=%.1f both=%.1f none=%.1f w=%.1f",
			noKV.ModelTput, noBoth.ModelTput, noNone.ModelTput, noW.ModelTput)
	}
	// Within 35% of the paper's absolute values.
	for _, bar := range r.Bars {
		if ratio := bar.ModelTput / bar.PaperTput; ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s: model %.1f vs paper %.0f (ratio %.2f)", bar.Label, bar.ModelTput, bar.PaperTput, ratio)
		}
	}
	if !strings.Contains(r.Format(), "Figure 3") {
		t.Error("Format missing header")
	}
}

func TestFigure4ZeroOverheadWithOffload(t *testing.T) {
	r, err := Figure4()
	if err != nil {
		t.Fatal(err)
	}
	off := r.Row("cpu-attn, w4")
	if off == nil {
		t.Fatal("missing cpu-attn row")
	}
	// With attention offloading the KV (de)quantization is zero; weight
	// dequantization remains (the weights still stream).
	kvOnly := r.Row("gpu-attn, kv4")
	if kvOnly == nil || kvOnly.Quant <= 0 || kvOnly.Dequant <= 0 {
		t.Fatalf("gpu-attn kv4 should have both quant and dequant time: %+v", kvOnly)
	}
	if kvOnly.Dequant <= kvOnly.Quant {
		t.Error("dequantization should dominate quantization")
	}
	both := r.Row("gpu-attn, w4+kv4")
	if both.Dequant <= kvOnly.Dequant {
		t.Error("adding weight quantization should add dequantization time")
	}
	if !strings.Contains(r.Format(), "Figure 4") {
		t.Error("Format missing header")
	}
}

func TestTable1MatchesPaperShape(t *testing.T) {
	r, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	w, wo := r.WithOffload, r.WithoutOffload
	within := func(name string, got, want, frac float64) {
		t.Helper()
		if ratio := got / want; ratio < 1-frac || ratio > 1+frac {
			t.Errorf("%s = %.2f GB, want %.2f GB ± %.0f%%", name, got/1e9, want/1e9, frac*100)
		}
	}
	within("with-offload weights up", w.WeightsUp, r.PaperWithWeightsUp, 0.25)
	within("without-offload weights up", wo.WeightsUp, r.PaperWithoutWeightsUp, 0.25)
	within("without-offload kv up", wo.KVCacheUp, r.PaperWithoutKVUp, 0.55)
	within("without-offload kv down", wo.KVCacheDown, r.PaperWithoutKVDown, 0.25)
	if w.KVCacheUp != 0 || w.KVCacheDown != 0 {
		t.Error("attention offload must move no KV")
	}
	// "99.5% less" claim: the activation the offload scheme uploads is far
	// smaller than the KV it avoids.
	if r.KVSavingsFraction() < 0.98 {
		t.Errorf("KV savings fraction = %.3f, want >= 0.98 (paper: 99.5%%)", r.KVSavingsFraction())
	}
	if !strings.Contains(r.Format(), "Table 1") {
		t.Error("Format missing header")
	}
}

func TestFigure5Shapes(t *testing.T) {
	r, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if r.BestInterOp() != 12 {
		t.Errorf("best inter-op = %d, want 12", r.BestInterOp())
	}
	// Intra-op curve rises then stabilizes.
	first, last := r.IntraOp[0], r.IntraOp[len(r.IntraOp)-1]
	var at8 float64
	for _, p := range r.IntraOp {
		if p.Parallelism == 8 {
			at8 = p.Throughput
		}
	}
	if at8 <= first.Throughput {
		t.Error("intra-op curve does not rise to 8 threads")
	}
	if ratio := last.Throughput / at8; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("intra-op tail not stable: 56-thread/8-thread = %.2f", ratio)
	}
	if !strings.Contains(r.Format(), "best inter-op parallelism: 12") {
		t.Errorf("Format: %s", r.Format())
	}
}

func TestTable3HeadlineSpeedups(t *testing.T) {
	r, err := Table3(nil, []int{8, 32, 128})
	if err != nil {
		t.Fatal(err)
	}
	// 4 models x 3 lengths x 3 frameworks.
	if len(r.Cells) != 36 {
		t.Fatalf("cells = %d, want 36", len(r.Cells))
	}
	// Headline bands (paper: 2.34x avg over FlexGen, 1.57x over ZeRO).
	if r.VsFlexGen.Mean < 1.8 || r.VsFlexGen.Mean > 5.5 {
		t.Errorf("FlexGen speedup avg = %.2f, want in [1.8, 5.5] (paper 2.34)", r.VsFlexGen.Mean)
	}
	// Our policy search finds a stronger 66B policy than the paper's
	// published one (98% of the weights GPU-resident at 4 bits), so the
	// ZeRO ratios run above the paper's 1.57x average; accept up to 5x.
	if r.VsZeRO.Mean < 1.1 || r.VsZeRO.Mean > 5.0 {
		t.Errorf("ZeRO speedup avg = %.2f, want in [1.1, 5.0] (paper 1.57)", r.VsZeRO.Mean)
	}
	// Every LM-Offload cell normalizes to 1.
	for _, c := range r.Cells {
		if c.Framework == "LM-Offload" && (c.NormTput < 0.999 || c.NormTput > 1.001) {
			t.Errorf("LM-Offload norm tput = %.3f", c.NormTput)
		}
	}
	// ZeRO batch sizes shrink for 66B models as in the paper.
	z30 := r.Cell("ZeRO-Inference", "OPT-30B", 32)
	z66 := r.Cell("ZeRO-Inference", "OPT-66B", 32)
	if z30 == nil || z66 == nil {
		t.Fatal("missing ZeRO cells")
	}
	if z66.BlockSize >= z30.BlockSize {
		t.Errorf("ZeRO block should shrink for OPT-66B: %d >= %d", z66.BlockSize, z30.BlockSize)
	}
	if !strings.Contains(r.Format(), "Table 3") {
		t.Error("Format missing header")
	}
}

func TestFigure7GainsInBand(t *testing.T) {
	r, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range r.Points {
		if p.GainPct <= 0 {
			t.Errorf("%s n=%d: quantization-aware policy does not beat FlexGen (%.0f%%)", p.Model, p.GenLen, p.GainPct)
		}
	}
	if !strings.Contains(r.Format(), "Figure 7") {
		t.Error("Format missing header")
	}
}

func TestFigure8Reductions(t *testing.T) {
	r, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 32% compute reduction, 19% average, 38% end-to-end.
	if r.ComputeReductionPct < 15 || r.ComputeReductionPct > 60 {
		t.Errorf("compute reduction = %.0f%%, want ~32%%", r.ComputeReductionPct)
	}
	if r.AvgReductionPct < 5 || r.AvgReductionPct > 60 {
		t.Errorf("average reduction = %.0f%%, want ~19%%", r.AvgReductionPct)
	}
	if r.EndToEndReductionPct < 15 || r.EndToEndReductionPct > 60 {
		t.Errorf("end-to-end reduction = %.0f%%, want ~38%%", r.EndToEndReductionPct)
	}
	if r.Tuned.InterOpCompute != 12 {
		t.Errorf("tuned inter-op = %d, want 12", r.Tuned.InterOpCompute)
	}
	if !strings.Contains(r.Format(), "Figure 8") {
		t.Error("Format missing header")
	}
}

func TestTable5CountsAndMechanism(t *testing.T) {
	r, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	// Reductions in the paper's band.
	if red := r.LoadReductionPct(); red < 20 || red > 60 {
		t.Errorf("load miss reduction = %.0f%%, want ~40%%", red)
	}
	if red := r.StoreReductionPct(); red < 20 || red > 60 {
		t.Errorf("store miss reduction = %.0f%%, want ~37%%", red)
	}
	// Absolute counts within 3x of the paper (counting windows differ).
	if ratio := float64(r.DefaultLoads) / r.PaperDefaultLoads; ratio < 0.33 || ratio > 3 {
		t.Errorf("default load misses = %.1fB, paper 10B (ratio %.2f)", float64(r.DefaultLoads)/1e9, ratio)
	}
	// Stores exceed loads as in the paper.
	if r.DefaultStores <= r.DefaultLoads {
		t.Error("store misses should exceed load misses")
	}
	// The cache simulator agrees on direction.
	if r.SimDefault.LoadMissRate() <= r.SimControlled.LoadMissRate() {
		t.Error("cache simulation does not show the thrashing mechanism")
	}
	if !strings.Contains(r.Format(), "Table 5") {
		t.Error("Format missing header")
	}
}

func TestFigure9ScalingStory(t *testing.T) {
	r, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(r.Series))
	}
	if r.MaxGainPct <= 50 {
		t.Errorf("max gain = %.0f%%, want > 50%% (paper: up to 327%%)", r.MaxGainPct)
	}
	if r.GapGrowth < 2 {
		t.Errorf("gap growth = %.1fx, want >= 2x (paper: up to 13.9x)", r.GapGrowth)
	}
	for _, s := range r.Series {
		for i := range s.LMOffload {
			if s.LMOffload[i].Throughput <= s.FlexGen[i].Throughput {
				t.Errorf("%s %d GPUs: LM-Offload not ahead", s.Model, s.LMOffload[i].GPUs)
			}
		}
	}
	if !strings.Contains(r.Format(), "Figure 9") {
		t.Error("Format missing header")
	}
}

func TestAblations(t *testing.T) {
	r, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// Overlap: throughput is non-increasing in β.
	for i := 1; i < len(r.OverlapTput); i++ {
		if r.OverlapTput[i] > r.OverlapTput[i-1]+1e-9 {
			t.Errorf("throughput rose with worse overlap: β=%.2f %.1f -> β=%.2f %.1f",
				r.OverlapBeta[i-1], r.OverlapTput[i-1], r.OverlapBeta[i], r.OverlapTput[i])
		}
	}
	// Bundling reduces op count without hurting the compute estimate much.
	if r.BundledOps >= r.UnbundledOps {
		t.Errorf("bundling did not reduce ops: %d -> %d", r.UnbundledOps, r.BundledOps)
	}
	if r.BundledTime > r.UnbundledTime*1.2 {
		t.Errorf("bundling hurt compute time: %.4f -> %.4f", r.UnbundledTime, r.BundledTime)
	}
	// Proportional assignment is at least as good as uniform.
	if r.ProportionalStep > r.UniformStep*1.001 {
		t.Errorf("proportional (%.4f) worse than uniform (%.4f)", r.ProportionalStep, r.UniformStep)
	}
	// Group metadata: very small groups cost throughput.
	if r.GroupTput[0] >= r.GroupTput[2] {
		t.Errorf("group 16 (%.1f) should be slower than group 64 (%.1f)", r.GroupTput[0], r.GroupTput[2])
	}
	// 2-bit moves less than 8-bit.
	if r.BitsTput[0] <= r.BitsTput[2] {
		t.Errorf("2-bit (%.1f) should beat 8-bit (%.1f) on pure transfer time", r.BitsTput[0], r.BitsTput[2])
	}
	if !strings.Contains(r.Format(), "Ablations") {
		t.Error("Format missing header")
	}
}

func TestFunctionalCheck(t *testing.T) {
	r, err := FunctionalCheck()
	if err != nil {
		t.Fatal(err)
	}
	cpu := r.Row("cpu-attn, no quant")
	gpu := r.Row("gpu-attn, no quant")
	f16 := r.Row("gpu-attn, fp16 host")
	kv4 := r.Row("gpu-attn, kv4")
	if cpu == nil || gpu == nil || f16 == nil || kv4 == nil {
		t.Fatal("missing rows")
	}
	// Lossless policies reproduce the reference exactly.
	if !cpu.MatchesReference || !gpu.MatchesReference {
		t.Error("lossless engine run diverged from the reference model")
	}
	// Attention offloading moves zero KV bytes (Observation 1, executably).
	if cpu.KVUp != 0 || cpu.KVDown != 0 {
		t.Errorf("cpu-attn moved KV: %d/%d", cpu.KVUp, cpu.KVDown)
	}
	if gpu.KVUp == 0 {
		t.Error("gpu-attn moved no KV")
	}
	// FP16 host storage halves KV traffic; 4-bit cuts it further.
	if f16.KVUp*2 != gpu.KVUp {
		t.Errorf("fp16 KV traffic %d, want half of %d", f16.KVUp, gpu.KVUp)
	}
	if kv4.KVUp >= f16.KVUp {
		t.Errorf("kv4 traffic %d not below fp16 %d", kv4.KVUp, f16.KVUp)
	}
	// Quantized runs actually exercised the (de)quantization kernels.
	if kv4.QuantOps == 0 || kv4.DequantOps == 0 {
		t.Error("kv4 run recorded no quantization work")
	}
	if !strings.Contains(r.Format(), "Functional cross-check") {
		t.Error("Format missing header")
	}
}

func TestAblationSweepsExtended(t *testing.T) {
	r, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy: SNR rises with bit width.
	for i := 1; i < len(r.BitsSNR); i++ {
		if r.BitsSNR[i] <= r.BitsSNR[i-1] {
			t.Errorf("SNR not rising with bits: %v", r.BitsSNR)
		}
	}
	// Block size: bigger zig-zag blocks amortize weight traffic, so
	// throughput grows with the block (within host memory).
	for i := 1; i < len(r.BlockTput); i++ {
		if r.BlockTput[i] < r.BlockTput[i-1]*0.99 {
			t.Errorf("throughput fell with block size: %v -> %v", r.BlockTput[i-1], r.BlockTput[i])
		}
	}
	if r.BlockTput[len(r.BlockTput)-1] < r.BlockTput[0]*1.2 {
		t.Errorf("large blocks should clearly beat single batches: %v", r.BlockTput)
	}
}

func TestScaleSweep(t *testing.T) {
	r, err := ScaleSweep(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 5 {
		t.Fatalf("points = %d, want 5", len(r.Points))
	}
	// Throughput decreases with model size among feasible points, and
	// LM-Offload beats FlexGen at every feasible scale (§5.3's consistency).
	var prev float64 = 1e18
	feasible := 0
	for _, p := range r.Points {
		if !p.Feasible {
			continue
		}
		feasible++
		if p.LM > prev {
			t.Errorf("%s: throughput rose with model size", p.Model)
		}
		prev = p.LM
		if p.FlexGen > 0 && p.LM <= p.FlexGen {
			t.Errorf("%s: LM-Offload (%.1f) not ahead of FlexGen (%.1f)", p.Model, p.LM, p.FlexGen)
		}
	}
	if feasible < 4 {
		t.Errorf("only %d feasible scales", feasible)
	}
	// OPT-175B (350 GB of FP16 weights) exceeds the 240 GB host: infeasible.
	last := r.Points[len(r.Points)-1]
	if last.Feasible {
		t.Errorf("OPT-175B should be infeasible on the 240 GB host")
	}
	if !strings.Contains(r.Format(), "infeasible") {
		t.Error("Format missing infeasible marker")
	}
}

func TestCSVExports(t *testing.T) {
	r3, err := Table3(nil, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	if out := r3.CSV(); !strings.Contains(out, "framework,model") || !strings.Contains(out, "LM-Offload") {
		t.Errorf("Table3 CSV malformed:\n%s", out)
	}
	r5, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if out := r5.CSV(); !strings.Contains(out, "intra-op,1,") {
		t.Errorf("Figure5 CSV malformed:\n%s", out)
	}
	r9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if out := r9.CSV(); !strings.Contains(out, "OPT-13B,4,FlexGen") {
		t.Errorf("Figure9 CSV malformed:\n%s", out)
	}
	rs, err := ScaleSweep(8)
	if err != nil {
		t.Fatal(err)
	}
	if out := rs.CSV(); !strings.Contains(out, "OPT-175B") {
		t.Errorf("Scale CSV malformed:\n%s", out)
	}
}

func TestValidateModel(t *testing.T) {
	r, err := ValidateModel(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// The DES realizes the Eq. 2 ideal within ~25% (it derives the overlap
	// the hardware permits)...
	if r.MAPEPaper > 0.25 {
		t.Errorf("Eq. 2 vs DES MAPE = %.0f%%, want <= 25%%", r.MAPEPaper*100)
	}
	// ...while the calibrated β model sits above it by a bounded software
	// margin and never under-predicts the ideal schedule.
	if r.MAPEModel > 0.80 {
		t.Errorf("β model margin = %.0f%%, want <= 80%%", r.MAPEModel*100)
	}
	if r.PessimisticFraction < 0.95 {
		t.Errorf("β model optimistic on %.0f%% of samples", (1-r.PessimisticFraction)*100)
	}
	if !strings.Contains(r.Format(), "MAPE") {
		t.Error("Format missing MAPE")
	}
	if _, err := ValidateModel(0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

func TestPlatformWhatIf(t *testing.T) {
	r, err := PlatformWhatIf(32)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(r.Rows))
	}
	for mod, speedup := range r.SpeedupByModel {
		if speedup <= 1 {
			t.Errorf("%s: H100 speedup %.2fx not above 1", mod, speedup)
		}
	}
	if !strings.Contains(r.Format(), "H100/A100") {
		t.Error("Format missing speedup lines")
	}
}
