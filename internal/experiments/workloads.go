package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
	"repro/internal/workload"
)

// WorkloadCell is one grid point: a workload generator replayed through the
// scheduler under one queueing policy and one load profile, with every
// perfmodel estimator scored as q-error (max(pred/act, act/pred)) against
// what the run actually measured.
type WorkloadCell struct {
	Workload string // generator kind (workload.Kinds)
	Policy   string // "fifo" or "fair"
	Profile  string // "calm" or "peak"

	Requests  int
	Completed int
	Shed      int // admission rejections (429/422/queue-full)

	// Scores maps estimator kind (perfmodel.Est*) to its accumulated
	// q-errors for this cell.
	Scores map[string]perfmodel.EstAccuracy
}

// WorkloadResult is the full workload × policy × profile estimator-accuracy
// grid.
type WorkloadResult struct {
	Model   model.Config
	Slots   int
	PerCell int
	Reduced bool
	Cells   []WorkloadCell
}

// workloadEstimators is the canonical estimator order for tables and CSV.
var workloadEstimators = []string{
	perfmodel.EstPeakArena, perfmodel.EstTPOT, perfmodel.EstDrain, perfmodel.EstPrefill,
}

// gridTenants is the standing multi-tenant mix the "fair" policy runs under:
// an interactive free tier, a weighted pro tier, and a batch tier.
func gridTenants(slots int) map[string]serve.TenantConfig {
	return map[string]serve.TenantConfig{
		"free":  {Slots: 1, Weight: 1},
		"pro":   {Slots: slots - 1, Weight: 3},
		"batch": {Slots: 1, Weight: 1},
	}
}

// WorkloadGrid runs the estimator-accuracy grid: every workload generator ×
// {fifo, fair} × {calm, peak}, perCell requests per cell, on a dedicated
// tiny-model engine per cell. Reduced (the CI -race configuration) trims to
// {diurnal, bursty, chat} × {fifo, fair} × calm.
func WorkloadGrid(perCell int, reduced bool) (*WorkloadResult, error) {
	cfg := model.Tiny()
	kinds := workload.Kinds()
	profiles := []string{"calm", "peak"}
	if reduced {
		kinds = []string{"diurnal", "bursty", "chat"}
		profiles = []string{"calm"}
	}
	const slots = 3
	out := &WorkloadResult{Model: cfg, Slots: slots, PerCell: perCell, Reduced: reduced}
	cellSeed := int64(9000)
	for _, kind := range kinds {
		for _, policy := range []string{"fifo", "fair"} {
			for _, profile := range profiles {
				cellSeed += 101
				cell, err := runWorkloadCell(cfg, kind, policy, profile, perCell, slots, cellSeed)
				if err != nil {
					return nil, fmt.Errorf("experiments: workload cell %s/%s/%s: %w", kind, policy, profile, err)
				}
				out.Cells = append(out.Cells, *cell)
			}
		}
	}
	return out, nil
}

// runWorkloadCell replays one generated trace through a fresh scheduler and
// scores the estimators. TPOT and prefill-cost pairs arrive inline via the
// scheduler's EstObserver; peak-arena is the admission model's high-water
// estimate against the arena's measured peak; drain is the published
// Retry-After predictor sampled during the post-arrival drain window against
// the wall-clock time the drain actually took.
func runWorkloadCell(cfg model.Config, kind, policy, profile string, perCell, slots int, seed int64) (*WorkloadCell, error) {
	// The calm profile leaves decode headroom between arrivals; peak
	// compresses the same trace into a third of the time, pushing the
	// scheduler against its admission gates.
	horizon := time.Duration(perCell) * 18 * time.Millisecond
	if profile == "peak" {
		horizon = time.Duration(perCell) * 6 * time.Millisecond
	}
	trace, err := workload.Generate(kind, workload.Spec{
		Seed: seed, N: perCell, Vocab: cfg.Vocab, Horizon: horizon,
	})
	if err != nil {
		return nil, err
	}
	if policy == "fair" {
		trace = workload.AssignTenants(trace, seed+1, "free", "pro", "batch")
	}

	m, err := model.NewModel(rand.New(rand.NewSource(424242)), cfg)
	if err != nil {
		return nil, err
	}
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 2, GPUBatch: slots}, 1<<30, threadpool.MustNew(2))
	if err != nil {
		return nil, err
	}
	collector := perfmodel.NewEstCollector()
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = slots
	scfg.QueueDepth = perCell + 8
	scfg.EstObserver = collector
	scfg.LatencySampleCap = 4 * perCell // keep every cell sample for quantiles
	// Chunked prefill is the production configuration: prompts past the
	// chunk admit incrementally, so a long arrival never lands its whole
	// prefill inside one decode gap. The estimator scoring is unchanged —
	// TPOT and prefill q-errors are measured on the decode-step and
	// chunk-advance windows respectively, never mixed.
	scfg.ChunkTokens = 16
	if policy == "fair" {
		scfg.Tenants = gridTenants(slots)
	}
	if kind == "chat" {
		scfg.PrefixCacheBytes = 1 << 20
	}
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return nil, err
	}

	var (
		mu        sync.Mutex
		completed int
		shed      int
	)
	var allSubmitted atomic.Bool
	done := make(chan struct{})

	// Drain sampler: once every arrival is in, each (t, predicted drain)
	// sample is scored against how long the system actually took to go idle
	// from t.
	type drainSample struct {
		at   time.Time
		pred time.Duration
	}
	var drainSamples []drainSample
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if !allSubmitted.Load() {
					continue
				}
				met := sched.Metrics()
				if met.PredictedDrain > 0 && met.QueueDepth+met.ActiveSlots > 0 {
					drainSamples = append(drainSamples, drainSample{at: time.Now(), pred: met.PredictedDrain})
				}
			}
		}
	}()

	start := time.Now()
	var wg sync.WaitGroup
	for i, r := range trace {
		wg.Add(1)
		go func(i int, r workload.Request) {
			defer wg.Done()
			if d := time.Until(start.Add(r.At)); d > 0 {
				time.Sleep(d)
			}
			st, err := sched.Submit(context.Background(), serve.Request{
				Prompt: r.Prompt, MaxNewTokens: r.MaxNewTokens, Tenant: r.Tenant,
			})
			if i == len(trace)-1 {
				allSubmitted.Store(true)
			}
			if err != nil {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			if _, err := st.Wait(); err != nil {
				mu.Lock()
				shed++
				mu.Unlock()
				return
			}
			mu.Lock()
			completed++
			mu.Unlock()
		}(i, r)
	}
	wg.Wait()
	drainedAt := time.Now()
	close(done)
	samplerWG.Wait()

	met := sched.Metrics()
	sched.Close()

	for _, s := range drainSamples {
		// Samples inside the last tick race the idle transition (both sides
		// near zero, ratio pure noise) — score only measurable drains.
		actual := drainedAt.Sub(s.at)
		if actual >= 2*time.Millisecond {
			collector.ObserveEstimate(perfmodel.EstDrain, s.pred.Seconds(), actual.Seconds())
		}
	}
	if met.PredictedPeakBytes > 0 && met.ArenaPeak > 0 {
		collector.ObserveEstimate(perfmodel.EstPeakArena,
			float64(met.PredictedPeakBytes), float64(met.ArenaPeak))
	}

	cell := &WorkloadCell{
		Workload: kind, Policy: policy, Profile: profile,
		Requests: len(trace), Completed: completed, Shed: shed,
		Scores: map[string]perfmodel.EstAccuracy{},
	}
	for _, est := range workloadEstimators {
		cell.Scores[est] = collector.Accuracy(est)
	}
	return cell, nil
}

// MedianFor returns the median q-error for one estimator across the cells
// selected by the filter (0 when nothing matched — callers decide whether
// absence is a failure).
func (r *WorkloadResult) MedianFor(est string, keep func(WorkloadCell) bool) float64 {
	var meds []float64
	for _, c := range r.Cells {
		if keep != nil && !keep(c) {
			continue
		}
		if acc, ok := c.Scores[est]; ok && acc.Count() > 0 {
			meds = append(meds, acc.Median())
		}
	}
	if len(meds) == 0 {
		return 0
	}
	sort.Float64s(meds)
	return meds[len(meds)/2]
}

// WorstMedian returns the worst per-cell median for one estimator across the
// whole grid (0 when the estimator never scored).
func (r *WorkloadResult) WorstMedian(est string) float64 {
	worst := 0.0
	for _, c := range r.Cells {
		if acc, ok := c.Scores[est]; ok && acc.Count() > 0 && acc.Median() > worst {
			worst = acc.Median()
		}
	}
	return worst
}

// CheckAcceptance enforces the grid's committed bar: on every calm diurnal
// cell the admission model's peak-arena median q-error and the step-cost
// TPOT median q-error must stay ≤ 2.0.
func (r *WorkloadResult) CheckAcceptance() error {
	for _, c := range r.Cells {
		if c.Workload != "diurnal" || c.Profile != "calm" {
			continue
		}
		for _, est := range []string{perfmodel.EstPeakArena, perfmodel.EstTPOT} {
			acc := c.Scores[est]
			if acc.Count() == 0 {
				return fmt.Errorf("experiments: %s/%s/%s: estimator %s never scored",
					c.Workload, c.Policy, c.Profile, est)
			}
			if med := acc.Median(); med > 2.0 {
				return fmt.Errorf("experiments: %s/%s/%s: %s median q-error %.2f exceeds 2.0",
					c.Workload, c.Policy, c.Profile, est, med)
			}
		}
	}
	return nil
}

// cellLabel is the compact workload/policy/profile cell name.
func (c WorkloadCell) cellLabel() string {
	return c.Workload + "/" + c.Policy + "/" + c.Profile
}

// qErrorBars renders a terminal bar chart of per-cell median q-error for one
// estimator: 1.0 is a perfect prediction, so bars grow with (median − 1).
func qErrorBars(cells []WorkloadCell, est string) string {
	const width = 40
	maxOver := 0.0
	for _, c := range cells {
		if acc := c.Scores[est]; acc.Count() > 0 && acc.Median()-1 > maxOver {
			maxOver = acc.Median() - 1
		}
	}
	if maxOver <= 0 {
		maxOver = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "median q-error by cell (%s; bar is excess over the perfect 1.0)\n", est)
	for _, c := range cells {
		acc := c.Scores[est]
		if acc.Count() == 0 {
			fmt.Fprintf(&b, "  %-24s | (no samples)\n", c.cellLabel())
			continue
		}
		n := int(float64(width) * (acc.Median() - 1) / maxOver)
		if n < 1 {
			n = 1
		}
		fmt.Fprintf(&b, "  %-24s |%s %.2f\n", c.cellLabel(), strings.Repeat("█", n), acc.Median())
	}
	return b.String()
}

// Format renders the grid with per-estimator medians/p95s per cell plus the
// TPOT and peak-arena charts.
func (r *WorkloadResult) Format() string {
	var b strings.Builder
	mode := "full"
	if r.Reduced {
		mode = "reduced"
	}
	fmt.Fprintf(&b, "Workload grid: estimator q-error over workload × policy × profile (%s, %s grid, %d slots, %d req/cell)\n",
		r.Model.Name, mode, r.Slots, r.PerCell)
	t := stats.NewTable("cell", "done", "shed", "estimator", "n", "q50", "q95", "qmax")
	for _, c := range r.Cells {
		for _, est := range workloadEstimators {
			acc := c.Scores[est]
			if acc.Count() == 0 {
				t.AddRowf("%s\t%d\t%d\t%s\t0\t-\t-\t-", c.cellLabel(), c.Completed, c.Shed, est)
				continue
			}
			t.AddRowf("%s\t%d\t%d\t%s\t%d\t%.2f\t%.2f\t%.2f",
				c.cellLabel(), c.Completed, c.Shed, est,
				acc.Count(), acc.Median(), acc.P95(), acc.Max())
		}
	}
	b.WriteString(t.String())
	b.WriteString(qErrorBars(r.Cells, perfmodel.EstTPOT))
	b.WriteString(qErrorBars(r.Cells, perfmodel.EstPeakArena))
	b.WriteString("q-error = max(predicted/actual, actual/predicted): 1.0 is exact, 2.0 is off by 2x either way.\n")
	b.WriteString("tpot/prefill score the live least-squares fits step by step; peak_arena scores the admission\n")
	b.WriteString("estimate against the arena high-water mark; drain scores Retry-After against the measured drain.\n")
	if err := r.CheckAcceptance(); err != nil {
		fmt.Fprintf(&b, "ACCEPTANCE FAILED: %v\n", err)
	} else {
		b.WriteString("acceptance: calm/diurnal peak_arena and tpot medians within 2.0 ✓\n")
	}
	return b.String()
}

// CSV emits one row per cell × estimator.
func (r *WorkloadResult) CSV() string {
	var b strings.Builder
	b.WriteString("workload,policy,profile,requests,completed,shed,estimator,count,q50,q95,qmax\n")
	for _, c := range r.Cells {
		for _, est := range workloadEstimators {
			acc := c.Scores[est]
			fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%s,%d,%.3f,%.3f,%.3f\n",
				c.Workload, c.Policy, c.Profile, c.Requests, c.Completed, c.Shed,
				est, acc.Count(), acc.Median(), acc.P95(), acc.Max())
		}
	}
	return b.String()
}
