package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cachesim"
	"repro/internal/parallelism"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table5Result reproduces Table 5: CPU last-level-cache misses during
// OPT-30B inference (n=8) under default threading versus parallelism
// control. Absolute counts come from the calibrated machine model summed
// over the whole run; the set-associative cache simulator demonstrates the
// thrashing mechanism with per-access miss rates.
type Table5Result struct {
	// Whole-run miss counts (machine model).
	DefaultLoads, DefaultStores int64
	TunedLoads, TunedStores     int64
	// Paper values (billions).
	PaperDefaultLoads, PaperDefaultStores float64
	PaperTunedLoads, PaperTunedStores     float64
	// Cache-simulator miss rates for the two stream shapes.
	SimDefault, SimControlled cachesim.Stats
}

// Table5 computes both views.
func Table5() (*Table5Result, error) {
	mod, _ := motivationWorkload()
	work := trace.ParallelismStudy()
	m := parallelism.Xeon6330()
	seq := work.PromptLen + work.GenLen/2
	og, err := parallelism.BuildAttentionGraph(mod, work, seq, parallelism.DefaultHeadGroups)
	if err != nil {
		return nil, err
	}
	ws := og.WorkingSetBytes()
	// Whole run: every decode step touches the working set once per layer.
	steps := int64(mod.Layers) * int64(work.GenLen-1)

	dl, ds := m.LLCMisses(112, parallelism.DefaultHeadGroups, 56, ws)
	tl, ts := m.LLCMisses(12, parallelism.DefaultHeadGroups, 8, ws)
	out := &Table5Result{
		DefaultLoads: dl * steps, DefaultStores: ds * steps,
		TunedLoads: tl * steps, TunedStores: ts * steps,
		PaperDefaultLoads: 10e9, PaperDefaultStores: 19e9,
		PaperTunedLoads: 6e9, PaperTunedStores: 12e9,
	}

	// Mechanism demonstration on the real cache model: one socket's LLC,
	// a slice of the working set.
	llc, err := cachesim.New(48<<20, 12, 64)
	if err != nil {
		return nil, err
	}
	// Replay a representative slice of the working set; the rates are what
	// matter, and the full set would take minutes to stream.
	slice := ws / 8
	if slice > 192<<20 {
		slice = 192 << 20
	}
	if slice < 96<<20 {
		slice = 96 << 20
	}
	if out.SimDefault, err = cachesim.ReplayAttention(llc, slice, cachesim.DefaultThreadingStreams()); err != nil {
		return nil, err
	}
	llc2, err := cachesim.New(48<<20, 12, 64)
	if err != nil {
		return nil, err
	}
	if out.SimControlled, err = cachesim.ReplayAttention(llc2, slice, cachesim.ControlledThreadingStreams()); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadReductionPct returns the modeled load-miss reduction (paper: 40%).
func (r *Table5Result) LoadReductionPct() float64 {
	if r.DefaultLoads == 0 {
		return 0
	}
	return (1 - float64(r.TunedLoads)/float64(r.DefaultLoads)) * 100
}

// StoreReductionPct returns the modeled store-miss reduction (paper: 37%).
func (r *Table5Result) StoreReductionPct() float64 {
	if r.DefaultStores == 0 {
		return 0
	}
	return (1 - float64(r.TunedStores)/float64(r.DefaultStores)) * 100
}

// Format renders both tables.
func (r *Table5Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 5: CPU last-level cache misses (OPT-30B, n=8)\n")
	t := stats.NewTable("parallelism control", "load misses", "store misses", "paper loads", "paper stores")
	t.AddRowf("disable (default)\t%.1fB\t%.1fB\t%.0fB\t%.0fB",
		float64(r.DefaultLoads)/1e9, float64(r.DefaultStores)/1e9, r.PaperDefaultLoads/1e9, r.PaperDefaultStores/1e9)
	t.AddRowf("enable\t%.1fB\t%.1fB\t%.0fB\t%.0fB",
		float64(r.TunedLoads)/1e9, float64(r.TunedStores)/1e9, r.PaperTunedLoads/1e9, r.PaperTunedStores/1e9)
	b.WriteString(t.String())
	fmt.Fprintf(&b, "load reduction %.0f%%, store reduction %.0f%% (paper: ~40%%/37%%)\n\n",
		r.LoadReductionPct(), r.StoreReductionPct())

	b.WriteString("mechanism (set-associative LLC simulation, per-socket):\n")
	t2 := stats.NewTable("stream shape", "load miss rate", "store miss rate")
	t2.AddRowf("default threading\t%.3f\t%.3f", r.SimDefault.LoadMissRate(), r.SimDefault.StoreMissRate())
	t2.AddRowf("parallelism control\t%.3f\t%.3f", r.SimControlled.LoadMissRate(), r.SimControlled.StoreMissRate())
	b.WriteString(t2.String())
	return b.String()
}
