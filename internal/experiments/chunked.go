package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/perfmodel"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/threadpool"
	"repro/internal/workload"
)

// ChunkedArm is one arm of the chunked-prefill A/B: a summarize workload of
// short-prompt decode streams with one long-prompt arrival injected mid-run,
// served either monolithically (ChunkTokens 0) or chunked.
type ChunkedArm struct {
	ChunkTokens int // 0 = monolithic admission

	// Inter-token gap quantiles across the background decode streams — the
	// client-observed TPOT the chunk bound protects. Mono admission puts the
	// whole long prefill into one gap of every concurrent stream; chunked
	// admission bounds every gap by one chunk's compute.
	TPOTP50, TPOTP99, TPOTMax time.Duration

	LongTTFT time.Duration // long request: submit -> first token
	During   int           // background tokens delivered inside the long prefill window
	Gaps     int           // background gap sample count

	// EstTPOT q-error of the live step-cost fit (predicted vs measured
	// decode-step duration). Chunk compute runs outside the timed decode
	// window, so these stay near 1 even while chunks advance; a regression
	// that leaks chunk work into the step measurement shows up here first.
	TPOTQErrP95, TPOTQErrMax float64
	TPOTQErrN                int
}

// ChunkedResult is the chunked-prefill TPOT-spike benchmark: the same
// summarize trace and long-prompt arrival replayed per arm, token-exact
// across arms, with the monolithic arm's p99 background gap compared against
// the chunked arm's.
type ChunkedResult struct {
	Model     model.Config
	PromptLen int // long-prompt length
	Streams   int // background summarize streams
	DecodeLen int // per-stream decode budget
	Arms      []ChunkedArm

	TokenExact bool    // every request's tokens identical across all arms
	P99Speedup float64 // mono TPOTP99 / first chunked arm's TPOTP99
}

// chunkedLongPrompt is the deterministic long prompt injected into every arm.
func chunkedLongPrompt(n, vocab int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = (i*11 + 5) % vocab
	}
	return p
}

// gapQuantile returns the q-quantile of sorted durations (inverse CDF: the
// smallest sample whose rank covers q).
func gapQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// runChunkedArm replays one arm: Streams summarize requests (Poisson
// arrivals, long prompts relative to their budget) plus one long-prompt
// arrival injected once the streams are decoding. It returns the arm's
// measurements and every request's served tokens (background in trace order,
// then the long request) for cross-arm exactness checks.
func runChunkedArm(cfg model.Config, chunk, promptLen, streams, decodeLen int, seed int64) (ChunkedArm, [][]int, error) {
	arm := ChunkedArm{ChunkTokens: chunk}
	bg, err := workload.Generate("summarize", workload.Spec{
		Seed: seed, N: streams, Vocab: cfg.Vocab, Horizon: 20 * time.Millisecond,
		MinNewTokens: decodeLen, MaxNewTokens: decodeLen + 2,
	})
	if err != nil {
		return arm, nil, err
	}

	// The model seed is fixed so every arm serves the identical model — the
	// outputs must match token for token across chunk sizes.
	m, err := model.NewModel(rand.New(rand.NewSource(424242)), cfg)
	if err != nil {
		return arm, nil, err
	}
	slots := streams + 1
	eng, err := runtime.NewEngine(m, runtime.Policy{IntraOp: 2, GPUBatch: slots, Prefetch: true}, 1<<30, threadpool.MustNew(2))
	if err != nil {
		return arm, nil, err
	}
	collector := perfmodel.NewEstCollector()
	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = slots
	scfg.QueueDepth = streams + 4
	scfg.MaxPromptLen = promptLen
	scfg.MaxNewTokens = decodeLen + 8
	scfg.ChunkTokens = chunk
	scfg.EstObserver = collector
	sched, err := serve.New(eng, scfg)
	if err != nil {
		return arm, nil, err
	}
	defer sched.Close()

	type tokTime struct{ at time.Time }
	var (
		mu       sync.Mutex
		armErr   error
		outputs  = make([][]int, streams+1)
		arrivals = make([][]tokTime, streams)
	)
	fail := func(err error) {
		mu.Lock()
		if armErr == nil {
			armErr = err
		}
		mu.Unlock()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i, r := range bg {
		wg.Add(1)
		go func(i int, r workload.Request) {
			defer wg.Done()
			if d := time.Until(start.Add(r.At)); d > 0 {
				time.Sleep(d)
			}
			st, err := sched.Submit(context.Background(), serve.Request{Prompt: r.Prompt, MaxNewTokens: r.MaxNewTokens})
			if err != nil {
				fail(fmt.Errorf("background %d: %w", i, err))
				return
			}
			var out []int
			var times []tokTime
			for tok := range st.Tokens() {
				out = append(out, tok)
				times = append(times, tokTime{at: time.Now()})
			}
			if _, err := st.Wait(); err != nil {
				fail(fmt.Errorf("background %d: %w", i, err))
				return
			}
			mu.Lock()
			outputs[i] = out
			arrivals[i] = times
			mu.Unlock()
		}(i, r)
	}

	// Inject the long arrival once the background streams are decoding: past
	// the 20ms arrival horizon with a margin for their own short prefills.
	time.Sleep(time.Until(start.Add(60 * time.Millisecond)))
	longSubmit := time.Now()
	st, err := sched.Submit(context.Background(), serve.Request{
		Prompt: chunkedLongPrompt(promptLen, cfg.Vocab), MaxNewTokens: 4,
	})
	if err != nil {
		wg.Wait()
		return arm, nil, fmt.Errorf("long arrival: %w", err)
	}
	var longOut []int
	var longFirst time.Time
	for tok := range st.Tokens() {
		if longOut == nil {
			longFirst = time.Now()
		}
		longOut = append(longOut, tok)
	}
	if _, err := st.Wait(); err != nil {
		fail(fmt.Errorf("long arrival: %w", err))
	}
	wg.Wait()
	if armErr != nil {
		return arm, nil, armErr
	}
	outputs[streams] = longOut
	arm.LongTTFT = longFirst.Sub(longSubmit)

	// Background gaps: consecutive inter-token intervals per stream (TTFT
	// excluded). During counts the tokens landing inside the long prefill
	// window [submit, first long token].
	var gaps []time.Duration
	for _, times := range arrivals {
		for j := 1; j < len(times); j++ {
			gaps = append(gaps, times[j].at.Sub(times[j-1].at))
		}
		for _, tt := range times {
			if tt.at.After(longSubmit) && tt.at.Before(longFirst) {
				arm.During++
			}
		}
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	arm.Gaps = len(gaps)
	arm.TPOTP50 = gapQuantile(gaps, 0.50)
	arm.TPOTP99 = gapQuantile(gaps, 0.99)
	arm.TPOTMax = gapQuantile(gaps, 1.0)
	acc := collector.Accuracy(perfmodel.EstTPOT)
	arm.TPOTQErrN = acc.Count()
	if acc.Count() > 0 {
		arm.TPOTQErrP95 = acc.P95()
		arm.TPOTQErrMax = acc.Max()
	}
	return arm, outputs, nil
}

// ChunkedBench runs the chunked-prefill TPOT-spike benchmark: a monolithic
// arm and two chunked arms over the identical summarize trace plus one
// 2048-token arrival, gating that (a) every arm serves bit-identical tokens
// and (b) the primary chunked arm improves the background p99 inter-token
// gap by at least 2x over monolithic admission.
func ChunkedBench() (*ChunkedResult, error) {
	cfg := model.Tiny()
	// Six streams of 48 tokens put the monolithic stall — one multi-second
	// gap per concurrent stream — well inside the top 1% of the ~280 gap
	// samples, so the p99 contrast is structural, not a rank-off-by-one.
	const (
		promptLen = 2048
		streams   = 6
		decodeLen = 48
		seed      = 7001
	)
	r := &ChunkedResult{Model: cfg, PromptLen: promptLen, Streams: streams, DecodeLen: decodeLen, TokenExact: true}
	var ref [][]int
	for _, chunk := range []int{0, 32, 128} {
		arm, outs, err := runChunkedArm(cfg, chunk, promptLen, streams, decodeLen, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: chunked arm %d: %w", chunk, err)
		}
		if ref == nil {
			ref = outs
		} else if !tokensEqual(ref, outs) {
			r.TokenExact = false
		}
		r.Arms = append(r.Arms, arm)
	}
	if r.Arms[1].TPOTP99 > 0 {
		r.P99Speedup = float64(r.Arms[0].TPOTP99) / float64(r.Arms[1].TPOTP99)
	}
	return r, nil
}

// tokensEqual reports whether two served-token sets match exactly.
func tokensEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// CheckAcceptance enforces the benchmark's committed bar: token-exact output
// across every arm, and ≥ 2x p99 TPOT improvement for the primary chunked
// arm over monolithic admission.
func (r *ChunkedResult) CheckAcceptance() error {
	if !r.TokenExact {
		return fmt.Errorf("experiments: chunked arms served different tokens than monolithic admission")
	}
	if r.P99Speedup < 2.0 {
		return fmt.Errorf("experiments: chunked p99 TPOT speedup %.2fx below the 2x bar", r.P99Speedup)
	}
	return nil
}

// Format renders the A/B table and the acceptance verdict.
func (r *ChunkedResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chunked prefill TPOT-spike bound (%s, %d-token arrival over %d summarize streams x %d tokens)\n",
		r.Model.Name, r.PromptLen, r.Streams, r.DecodeLen)
	t := stats.NewTable("chunk", "gap p50", "gap p99", "gap max", "long ttft", "during", "tpot q95", "tpot qmax")
	for _, a := range r.Arms {
		label := "mono"
		if a.ChunkTokens > 0 {
			label = fmt.Sprintf("%d", a.ChunkTokens)
		}
		t.AddRowf("%s\t%.1fms\t%.1fms\t%.1fms\t%.0fms\t%d\t%.2f\t%.2f",
			label, ms(a.TPOTP50), ms(a.TPOTP99), ms(a.TPOTMax), ms(a.LongTTFT),
			a.During, a.TPOTQErrP95, a.TPOTQErrMax)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "p99 inter-token gap: mono %.1fms vs chunked(%d) %.1fms — %.1fx\n",
		ms(r.Arms[0].TPOTP99), r.Arms[1].ChunkTokens, ms(r.Arms[1].TPOTP99), r.P99Speedup)
	b.WriteString("during = background tokens delivered while the long prompt prefilled; mono stalls the batch,\n")
	b.WriteString("chunked interleaves one bounded chunk per scheduler iteration. tpot q-errors score the live\n")
	b.WriteString("step-cost fit on decode steps only — chunk compute runs outside the timed decode window.\n")
	if err := r.CheckAcceptance(); err != nil {
		fmt.Fprintf(&b, "ACCEPTANCE FAILED: %v\n", err)
	} else {
		fmt.Fprintf(&b, "acceptance: token-exact across arms, chunked p99 gap >= 2x better than monolithic ✓\n")
	}
	return b.String()
}

// ms renders a duration in fractional milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// CSV emits one row per arm.
func (r *ChunkedResult) CSV() string {
	var b strings.Builder
	b.WriteString("chunk_tokens,prompt_len,streams,decode_len,gap_p50_ms,gap_p99_ms,gap_max_ms,long_ttft_ms,during_tokens,tpot_qerr_p95,tpot_qerr_max,token_exact,p99_speedup\n")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%d,%.3f,%.3f,%t,%.3f\n",
			a.ChunkTokens, r.PromptLen, r.Streams, r.DecodeLen,
			ms(a.TPOTP50), ms(a.TPOTP99), ms(a.TPOTMax), ms(a.LongTTFT),
			a.During, a.TPOTQErrP95, a.TPOTQErrMax, r.TokenExact, r.P99Speedup)
	}
	return b.String()
}
