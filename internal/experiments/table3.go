package experiments

import (
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/stats"
)

// Table3Cell is one (framework, model, generation length) measurement.
type Table3Cell struct {
	Framework  string
	Model      string
	GenLen     int
	BlockSize  int
	WG, CG, HG float64 // placement percentages, 0-100
	MemGB      float64
	Throughput float64
	// NormTput is throughput divided by LM-Offload's for the same config.
	NormTput float64
}

// Table3Result reproduces Table 3: FlexGen vs ZeRO-Inference vs LM-Offload
// across the four evaluation models and five generation lengths.
type Table3Result struct {
	Cells []Table3Cell
	// Speedups summarize LM-Offload against each baseline (the abstract's
	// headline numbers: up to 2.95x / 2.34x avg over FlexGen, up to
	// 2.88x / 1.57x avg over ZeRO-Inference).
	VsFlexGen, VsZeRO stats.SpeedupSummary
}

// Table3 runs the full grid. Models and lengths can be narrowed for quick
// runs; nil/empty selects the paper's full axes.
func Table3(models []model.Config, genLens []int) (*Table3Result, error) {
	if len(models) == 0 {
		models = model.Evaluated()
	}
	if len(genLens) == 0 {
		genLens = []int{8, 16, 32, 64, 128}
	}
	plat := a100()
	out := &Table3Result{}
	var lmT, fgT, zrT []float64

	add := func(sys *baselines.System, modName string, genLen int, lm float64) {
		cell := Table3Cell{
			Framework:  sys.Name,
			Model:      modName,
			GenLen:     genLen,
			BlockSize:  sys.Work.BlockSize(),
			WG:         sys.Strategy.WeightsGPUPct * 100,
			CG:         sys.Strategy.CacheGPUPct * 100,
			HG:         sys.Strategy.ActGPUPct * 100,
			MemGB:      float64(sys.Estimator.TotalMemory()) / (1 << 30),
			Throughput: sys.Throughput(),
		}
		if lm > 0 {
			cell.NormTput = sys.Throughput() / lm
		}
		out.Cells = append(out.Cells, cell)
	}

	for _, mod := range models {
		for _, n := range genLens {
			lm, err := baselines.LMOffload(plat, mod, 64, 64, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: table 3 %s n=%d: %w", mod.Name, n, err)
			}
			fg, err := baselines.FlexGen(plat, mod, 64, 64, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: table 3 %s n=%d: %w", mod.Name, n, err)
			}
			zr, err := baselines.ZeRO(plat, mod, 64, n)
			if err != nil {
				return nil, fmt.Errorf("experiments: table 3 %s n=%d: %w", mod.Name, n, err)
			}
			lmTput := lm.Throughput()
			add(fg, mod.Name, n, lmTput)
			add(zr, mod.Name, n, lmTput)
			add(lm, mod.Name, n, lmTput)
			lmT = append(lmT, lmTput)
			fgT = append(fgT, fg.Throughput())
			zrT = append(zrT, zr.Throughput())
		}
	}
	var err error
	if out.VsFlexGen, err = stats.Speedups(lmT, fgT); err != nil {
		return nil, err
	}
	if out.VsZeRO, err = stats.Speedups(lmT, zrT); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the grid in the paper's row layout.
func (r *Table3Result) Format() string {
	var b strings.Builder
	b.WriteString("Table 3: FlexGen vs ZeRO-Inference vs LM-Offload (A100 platform, s=64)\n")
	t := stats.NewTable("framework", "model", "len", "bls", "wg", "cg", "hg", "mem GB", "tok/s", "norm")
	for _, c := range r.Cells {
		t.AddRowf("%s\t%s\t%d\t%d\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%.2f",
			c.Framework, c.Model, c.GenLen, c.BlockSize, c.WG, c.CG, c.HG, c.MemGB, c.Throughput, c.NormTput)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "LM-Offload vs FlexGen:        %s (paper: up to 2.95x, 2.34x avg)\n", r.VsFlexGen)
	fmt.Fprintf(&b, "LM-Offload vs ZeRO-Inference: %s (paper: up to 2.88x, 1.57x avg)\n", r.VsZeRO)
	return b.String()
}

// Cell returns the first cell matching the selector, or nil.
func (r *Table3Result) Cell(framework, mod string, genLen int) *Table3Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Framework == framework && c.Model == mod && c.GenLen == genLen {
			return c
		}
	}
	return nil
}
