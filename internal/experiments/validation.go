package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/perfmodel"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ValidationPoint compares the analytical model against the simulator for
// one randomly drawn strategy.
type ValidationPoint struct {
	Strategy perfmodel.Strategy
	Model    float64 // β-composition step time (s/layer/token)
	Paper    float64 // literal Eq. 2 step time
	Sim      float64 // DES step time
}

// ValidationResult quantifies how the three timing layers relate over a
// random strategy sample — the calibration report a performance-model paper
// owes its readers. The discrete-event simulator derives the best schedule
// the hardware resources permit, so it validates the *feasibility* side of
// Eq. 2 (MAPEPaper small); the β-composition deliberately sits above both,
// encoding the measured software losses (stream serialization, per-layer
// synchronization) that neither idealization captures.
type ValidationResult struct {
	Points []ValidationPoint
	// MAPEPaper is the mean absolute percentage error of the literal Eq. 2
	// model against the DES (how well the simulator realizes the ideal).
	MAPEPaper float64
	// MAPEModel is the β model's deviation from the DES — the modeled
	// software-overhead margin.
	MAPEModel float64
	// PessimisticFraction is the share of samples where the β model is at
	// or above the DES (it must never promise more than the hardware-ideal
	// schedule delivers).
	PessimisticFraction float64
	// WorstModel is the largest |error| ratio of the β model.
	WorstModel float64
}

// ValidateModel samples n random feasible strategies on the motivation
// setup and reports model-vs-simulation error.
func ValidateModel(n int, seed int64) (*ValidationResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("experiments: need at least one sample")
	}
	rng := rand.New(rand.NewSource(seed))
	fg := perfmodel.FlexGenProfile()
	out := &ValidationResult{}
	var errModel, errPaper []float64

	for len(out.Points) < n {
		s := perfmodel.Strategy{
			WeightsGPUPct: rng.Float64(),
			CacheGPUPct:   rng.Float64() * 0.4,
			ActGPUPct:     rng.Float64(),
			GroupSize:     64,
		}
		switch rng.Intn(3) {
		case 0:
			s.AttnOnCPU = true
			s.CacheGPUPct = 0
		case 1:
			s.QuantKV = true
			s.KVBits = []int{2, 4, 8}[rng.Intn(3)]
		case 2:
			s.QuantKV = true
			s.KVBits = 4
			s.QuantWeights = true
			s.WeightBits = 4
		}
		e := estimate(s, fg)
		res, err := sim.SimulateDecode(e, 2)
		if err != nil {
			return nil, err
		}
		p := ValidationPoint{
			Strategy: s,
			Model:    e.TGen(),
			Paper:    e.TGenPaper(),
			Sim:      res.StepTime,
		}
		out.Points = append(out.Points, p)
		em := math.Abs(p.Model-p.Sim) / p.Sim
		errModel = append(errModel, em)
		errPaper = append(errPaper, math.Abs(p.Paper-p.Sim)/p.Sim)
		if em > out.WorstModel {
			out.WorstModel = em
		}
		if p.Model >= p.Sim*0.999 {
			out.PessimisticFraction += 1 / float64(n)
		}
	}
	out.MAPEModel = stats.Mean(errModel)
	out.MAPEPaper = stats.Mean(errPaper)
	return out, nil
}

// Format renders the summary with the five worst points.
func (r *ValidationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model validation across %d random strategies:\n", len(r.Points))
	fmt.Fprintf(&b, "Eq. 2 ideal vs DES:    %.1f%% MAPE (the simulator realizes the idealized schedule)\n", r.MAPEPaper*100)
	fmt.Fprintf(&b, "β model vs DES:        %.1f%% above (worst %.0f%%) — the modeled software-overhead margin\n", r.MAPEModel*100, r.WorstModel*100)
	fmt.Fprintf(&b, "β model pessimistic on %.0f%% of samples (it never promises more than the ideal)\n\n", r.PessimisticFraction*100)
	pts := append([]ValidationPoint(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool {
		return math.Abs(pts[i].Model-pts[i].Sim)/pts[i].Sim > math.Abs(pts[j].Model-pts[j].Sim)/pts[j].Sim
	})
	t := stats.NewTable("strategy", "model ms", "eq2 ms", "sim ms")
	for i, p := range pts {
		if i >= 5 {
			break
		}
		t.AddRowf("%v\t%.1f\t%.1f\t%.1f", p.Strategy, p.Model*1e3, p.Paper*1e3, p.Sim*1e3)
	}
	b.WriteString(t.String())
	return b.String()
}
