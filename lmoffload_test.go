package lmoffload

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestPlanOnPaperSetup(t *testing.T) {
	work, err := NewWorkload(64, 128, 64, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Plan(SingleGPUA100(), OPT30B, work)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatal("non-positive planned throughput")
	}
	if desc := Describe(res); !strings.Contains(desc, "tok/s") {
		t.Errorf("Describe = %q", desc)
	}
}

func TestNewWorkloadValidates(t *testing.T) {
	if _, err := NewWorkload(0, 1, 1, 1); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestEstimateAndSimulateAgree(t *testing.T) {
	work, _ := NewWorkload(64, 32, 64, 10)
	s := Strategy{WeightsGPUPct: 0.55, QuantKV: true, KVBits: 4, GroupSize: 64}
	tput, err := EstimateThroughput(SingleGPUA100(), OPT30B, work, s, LMOffloadProfile())
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := Simulate(SingleGPUA100(), OPT30B, work, s, LMOffloadProfile(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := simRes.Throughput / tput; ratio < 0.3 || ratio > 3 {
		t.Errorf("sim/model ratio = %.2f", ratio)
	}
}

func TestTuneParallelism(t *testing.T) {
	work, _ := NewWorkload(64, 8, 64, 10)
	setting, err := TuneParallelism(SingleGPUA100(), OPT30B, work)
	if err != nil {
		t.Fatal(err)
	}
	if setting.InterOpCompute != 12 {
		t.Errorf("inter-op = %d, want 12", setting.InterOpCompute)
	}
	if setting.IntraOp < 1 {
		t.Errorf("intra-op = %d", setting.IntraOp)
	}
}

func TestCompareSystems(t *testing.T) {
	fg, zr, lm, err := CompareSystems(SingleGPUA100(), LLaMA30B, 64, 64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Throughput() <= fg.Throughput() {
		t.Errorf("LM-Offload (%.1f) not ahead of FlexGen (%.1f)", lm.Throughput(), fg.Throughput())
	}
	if zr.Work.GPUBatch > 64 {
		t.Errorf("ZeRO batch %d", zr.Work.GPUBatch)
	}
}

func TestRunTinyInference(t *testing.T) {
	cfg := TinyModel()
	prompts := [][]int{{1, 2, 3}, {4, 5, 6}}
	res, err := RunTinyInference(cfg, EnginePolicy{IntraOp: 1, Prefetch: true}, prompts, 4, 1<<30, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 2 || len(res.Tokens[0]) != 4 {
		t.Fatalf("tokens shape wrong: %v", res.Tokens)
	}
	if res.Stats.TokensGenerated != 8 {
		t.Errorf("TokensGenerated = %d", res.Stats.TokensGenerated)
	}
	// Determinism across runs.
	res2, err := RunTinyInference(cfg, EnginePolicy{IntraOp: 1, Prefetch: true}, prompts, 4, 1<<30, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Tokens {
		for j := range res.Tokens[i] {
			if res.Tokens[i][j] != res2.Tokens[i][j] {
				t.Fatal("inference not deterministic across runs")
			}
		}
	}
}

func TestExplainFacade(t *testing.T) {
	work, _ := NewWorkload(64, 64, 64, 10)
	res, err := Plan(SingleGPUA100(), OPT30B, work)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Explain(res)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Bottleneck == "" || ex.Format() == "" {
		t.Error("empty explanation")
	}
}

func TestLatencyCurveFacade(t *testing.T) {
	work, _ := NewWorkload(64, 16, 64, 4)
	curve, err := LatencyCurve(SingleGPUA100(), OPT30B, work, Strategy{WeightsGPUPct: 0.5}, FlexGenProfile())
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 16 {
		t.Fatalf("curve length = %d", len(curve))
	}
	if curve[15] <= curve[0] {
		t.Error("curve does not grow with the KV cache")
	}
}

func TestLoadersFacade(t *testing.T) {
	plat, err := LoadPlatform(strings.NewReader(`{
	  "name": "mini",
	  "gpus": [{"name": "g", "memGiB": 24, "memBandwidthGBs": 500, "tflops": 50, "freqGHz": 1.5}],
	  "cpu": {"name": "c", "sockets": 1, "cores": 16, "threads": 32,
	          "memGiB": 128, "memBandwidthGBs": 100, "tflops": 1, "freqGHz": 3},
	  "link": {"name": "pcie", "perDirectionGBs": 25, "latencyUS": 10, "duplex": true}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModelConfig(strings.NewReader(`{"name": "M", "layers": 8, "hidden": 512,
	  "ffn": 2048, "heads": 8, "vocab": 1000}`))
	if err != nil {
		t.Fatal(err)
	}
	// A custom platform + model goes straight through the planner.
	work, _ := NewWorkload(32, 16, 8, 2)
	res, err := Plan(plat, mod, work)
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Error("non-positive throughput on custom inputs")
	}
}

func TestPlanWithAndAnalyzeFacade(t *testing.T) {
	work, _ := NewWorkload(64, 16, 64, 4)
	opts := DefaultPolicyOpts()
	opts.Bits = []int{8}
	res, err := PlanWith(SingleGPUA100(), OPT30B, work, ZeROProfile(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy.QuantKV && res.Strategy.KVBits != 8 {
		t.Errorf("restricted bits ignored: %v", res.Strategy)
	}
	ref := tensor.RandN(rand.New(rand.NewSource(1)), 1, 32, 32)
	st, err := AnalyzeQuantization(ref, QuantConfig{Bits: 4, GroupSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if st.SNRdB <= 0 {
		t.Errorf("SNR = %g", st.SNRdB)
	}
}
