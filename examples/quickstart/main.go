// Quickstart: plan an offloading policy for OPT-30B on the paper's A100
// platform, inspect the decision, and run a real (tiny) model through the
// functional offloading engine.
package main

import (
	"fmt"
	"log"

	lmoffload "repro"
)

func main() {
	// 1. Describe the job: OPT-30B, 64-token prompts, 128 generated tokens,
	//    GPU batches of 64 grouped into a zig-zag block of 640.
	work, err := lmoffload.NewWorkload(64, 128, 64, 10)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Ask the quantization-aware policy search where tensors should live
	//    and what to compress.
	plat := lmoffload.SingleGPUA100()
	res, err := lmoffload.Plan(plat, lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planned policy:", lmoffload.Describe(res))

	// 3. Cross-check the analytical estimate with the discrete-event
	//    simulator.
	simRes, err := lmoffload.Simulate(plat, lmoffload.OPT30B, work, res.Strategy, lmoffload.LMOffloadProfile(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated:      %.1f tok/s (H2D link %.0f%% busy, GPU %.0f%% busy)\n",
		simRes.Throughput, simRes.Utilization["h2d"]*100, simRes.Utilization["gpu"]*100)

	// 4. Run a real tiny transformer through the offloading engine with
	//    4-bit KV quantization and verify it generates.
	tiny := lmoffload.TinyModel()
	prompts := [][]int{{1, 2, 3, 4}, {5, 6, 7, 8}}
	out, err := lmoffload.RunTinyInference(tiny,
		lmoffload.EnginePolicy{
			QuantKV: true,
			KVCfg:   lmoffload.QuantConfig{Bits: 4, GroupSize: 32},
			IntraOp: 2, Prefetch: true,
		},
		prompts, 8, 1<<30, 42, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional engine generated %d tokens: %s\n", out.Stats.TokensGenerated, out.Stats)
	fmt.Println("first sequence:", out.Tokens[0])
}
