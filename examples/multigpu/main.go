// Multi-GPU walkthrough: weak-scale OPT-13B over 1-4 V100s with pipeline
// parallelism, comparing LM-Offload against FlexGen — the §5.5 study.
package main

import (
	"fmt"
	"log"

	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/pipeline"
)

func main() {
	plat := hw.MultiGPUV100()
	mod := model.OPT13B

	lm, err := pipeline.WeakScaling(plat, mod, pipeline.LMOffloadConfig, 4)
	if err != nil {
		log.Fatal(err)
	}
	fg, err := pipeline.WeakScaling(plat, mod, pipeline.FlexGenConfig, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("weak scaling, %s on %s (s=256, n=64, batch = 32 x GPUs)\n\n", mod.Name, plat.Name)
	fmt.Printf("%-5s  %-16s  %-16s  %-7s  %s\n", "GPUs", "LM-Offload tok/s", "FlexGen tok/s", "gain", "LM bubble")
	for i := range lm {
		gain := (lm[i].Throughput/fg[i].Throughput - 1) * 100
		fmt.Printf("%-5d  %-16.1f  %-16.1f  %.0f%%     %.0f%%\n",
			lm[i].GPUs, lm[i].Throughput, fg[i].Throughput, gain, lm[i].BubbleFraction*100)
	}
	gap1 := lm[0].Throughput - fg[0].Throughput
	gap4 := lm[3].Throughput - fg[3].Throughput
	fmt.Printf("\nabsolute gap grows %.1fx from 1 to 4 GPUs (paper: up to 13.9x)\n", gap4/gap1)
	fmt.Printf("per-stage policy at 4 GPUs: %v\n", lm[3].Strategy)
}
