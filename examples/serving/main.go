// Serving walkthrough: stream tokens from the offloading engine with a
// per-step callback and an early-stop condition — the shape an online
// serving loop takes on top of the offline engine.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/model"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/threadpool"
)

func main() {
	cfg := model.Small()
	const seed = 7
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	pool := threadpool.MustNew(4)
	eng, err := runtime.NewEngine(m, runtime.Policy{
		QuantKV:  true,
		KVCfg:    quant.Config{Bits: 4, GroupSize: 32},
		HostF16:  false,
		GPUBatch: 2,
		IntraOp:  4,
		Prefetch: true,
	}, 1<<31, pool)
	if err != nil {
		log.Fatal(err)
	}

	prompts := [][]int{
		{10, 20, 30, 40, 50, 60, 70, 80},
		{5, 15, 25, 35, 45, 55, 65, 75},
	}
	// Treat token 0 as end-of-sequence: stop as soon as every stream emits
	// it (or after 32 steps).
	const eos = 0
	fmt.Println("streaming generation (token per sequence per step):")
	out, err := eng.GenerateStream(context.Background(), prompts, 32, func(step int, tokens []int) bool {
		fmt.Printf("  step %2d: %v\n", step, tokens)
		done := true
		for _, tok := range tokens {
			if tok != eos {
				done = false
			}
		}
		return !done
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngenerated %d + %d tokens\n", len(out[0]), len(out[1]))
	fmt.Println("engine stats:", eng.Stats())
}
