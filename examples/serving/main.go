// Serving walkthrough: run the continuous-batching scheduler as a library.
// Requests with ragged prompts and budgets are submitted concurrently; the
// scheduler admits them into free KV slots at decode-step boundaries,
// streams tokens back per request, and reports occupancy and latency
// metrics when the mix drains — the same machinery `lmo-serve` exposes over
// HTTP.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/threadpool"
)

func main() {
	cfg := model.Small()
	const seed = 7
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		log.Fatal(err)
	}
	pool := threadpool.MustNew(4)
	eng, err := runtime.NewEngine(m, runtime.Policy{
		GPUBatch: 2,
		IntraOp:  4,
		Prefetch: true,
	}, 1<<31, pool)
	if err != nil {
		log.Fatal(err)
	}

	scfg := serve.DefaultConfig(cfg.Vocab)
	scfg.Slots = 2
	scfg.EOS = 0 // treat token 0 as end-of-sequence
	sched, err := serve.New(eng, scfg)
	if err != nil {
		log.Fatal(err)
	}

	reqs := []serve.Request{
		{Prompt: []int{10, 20, 30, 40, 50, 60, 70, 80}, MaxNewTokens: 12},
		{Prompt: []int{5, 15, 25, 35, 45, 55, 65, 75}, MaxNewTokens: 8},
		{Prompt: []int{101, 202, 303}, MaxNewTokens: 10},
	}
	fmt.Println("continuous-batching serve (streamed per request):")
	var wg sync.WaitGroup
	for i, req := range reqs {
		wg.Add(1)
		go func(i int, req serve.Request) {
			defer wg.Done()
			// Stagger arrivals so the third request joins mid-batch.
			time.Sleep(time.Duration(i) * 2 * time.Millisecond)
			st, err := sched.Submit(context.Background(), req)
			if err != nil {
				log.Fatal(err)
			}
			var tokens []int
			for tok := range st.Tokens() {
				tokens = append(tokens, tok)
			}
			if _, err := st.Wait(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  request %d (%d-token prompt): %d tokens %v\n",
				i, len(req.Prompt), len(tokens), tokens)
		}(i, req)
	}
	wg.Wait()

	m2 := sched.Metrics()
	fmt.Printf("\nadmitted=%d completed=%d batch-steps=%d avg-occupancy=%.2f\n",
		m2.Serve.Admitted, m2.Serve.Completed, m2.Serve.BatchSteps, m2.Serve.AvgOccupancy)
	fmt.Printf("ttft p50=%v p99=%v\n",
		m2.Serve.TTFTP50.Round(time.Microsecond), m2.Serve.TTFTP99.Round(time.Microsecond))
	sched.Close()
	fmt.Println("engine stats:", eng.Stats())
}
