// Parallelism control walkthrough: build the attention operator graph, run
// Algorithm 3, and compare the tuned thread configuration against PyTorch's
// default — the §4/§5.4 story.
package main

import (
	"fmt"
	"log"

	lmoffload "repro"
)

func main() {
	plat := lmoffload.SingleGPUA100()
	work, err := lmoffload.NewWorkload(64, 8, 64, 10)
	if err != nil {
		log.Fatal(err)
	}

	setting, err := lmoffload.TuneParallelism(plat, lmoffload.OPT30B, work)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine: %s (%d cores, %d hardware threads)\n\n", plat.CPU.Name, plat.CPU.Cores, plat.CPU.Threads)
	fmt.Println("Algorithm 3 result:")
	fmt.Printf("  compute task: inter-op %d (graph max concurrency), intra-op %d threads each\n",
		setting.InterOpCompute, setting.IntraOp)
	fmt.Printf("  total inter-op parallelism: %d (compute + 5 load/store tasks)\n", setting.InterOp)
	fmt.Println("  transfer-task threads (proportional to volume):")
	for _, name := range []string{"load_weight", "load_cache", "store_cache", "load_activation", "store_activation"} {
		fmt.Printf("    %-18s %d\n", name, setting.TransferThreads[name])
	}
	fmt.Printf("  estimated compute-task time: %.1f ms; step time: %.1f ms\n",
		setting.ComputeTime*1e3, setting.StepTime*1e3)
	fmt.Println("\npaper's tuned setting on this machine: inter-op 12, intra-op 16 (§5.4)")

	// Close the loop: let the policy search and the parallelism controller
	// tune against each other.
	tuned, err := lmoffload.AutoTune(plat, lmoffload.OPT30B, work, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautotuned (policy x parallelism, %d rounds): %s\n",
		tuned.Iterations, lmoffload.Describe(tuned.Policy))
	fmt.Printf("derived CPU efficiency fed back into the model: %.2f\n", tuned.Profile.CPUCompute)
}
