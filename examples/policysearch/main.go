// Policy search walkthrough: compare FlexGen, ZeRO-Inference, and
// LM-Offload across generation lengths for one model — a miniature Table 3
// — and show how the quantization-aware model changes the decision.
package main

import (
	"fmt"
	"log"

	lmoffload "repro"
)

func main() {
	plat := lmoffload.SingleGPUA100()
	mod := lmoffload.OPT30B

	fmt.Printf("framework comparison, %s on %s (s=64, bsz=64)\n\n", mod.Name, plat.Name)
	fmt.Printf("%-6s  %-12s  %-12s  %-12s  %-8s\n", "genlen", "FlexGen", "ZeRO", "LM-Offload", "speedup")
	for _, n := range []int{8, 16, 32, 64, 128} {
		fg, zr, lm, err := lmoffload.CompareSystems(plat, mod, 64, 64, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d  %-12.1f  %-12.1f  %-12.1f  %.2fx\n",
			n, fg.Throughput(), zr.Throughput(), lm.Throughput(), lm.Throughput()/fg.Throughput())
	}

	// Show what the winning policy actually decided for one configuration.
	_, _, lm, err := lmoffload.CompareSystems(plat, mod, 64, 64, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nLM-Offload's n=128 policy: %v\n", lm.Strategy)
	fmt.Printf("block size %d across %d GPU batches; memory GPU %.1f GB / CPU %.1f GB\n",
		lm.Work.BlockSize(), lm.Work.NumBatches,
		float64(lm.Estimator.Memory().GPU)/(1<<30), float64(lm.Estimator.Memory().CPU)/(1<<30))

	// The same search with the quantization models switched off (FlexGen's
	// view of the world) picks a different, slower policy.
	opts := lmoffload.DefaultPolicyOpts()
	opts.QuantAware = false
	work, _ := lmoffload.NewWorkload(64, 128, 64, 10)
	blind, err := lmoffload.PlanWith(plat, mod, work, lmoffload.LMOffloadProfile(), opts)
	if err != nil {
		log.Fatal(err)
	}
	aware, err := lmoffload.Plan(plat, mod, work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nquantization-blind objective picks: %v -> %.1f tok/s\n", blind.Strategy, blind.Throughput)
	fmt.Printf("quantization-aware objective picks: %v -> %.1f tok/s\n", aware.Strategy, aware.Throughput)
}
