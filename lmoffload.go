// Package lmoffload is the public facade of the LM-Offload reproduction: a
// performance-model-guided offloading framework for generative LLM inference
// with parallelism control, after Wu et al., "LM-Offload: Performance
// Model-Guided Generative Inference of Large Language Models with
// Parallelism Control" (IPPS 2025).
//
// The package re-exports the pieces a downstream user composes:
//
//   - hardware platforms (the paper's A100 and 4xV100 machines, or custom),
//   - model configurations (OPT and LLaMA families, plus tiny runnable ones),
//   - the quantization-aware policy search (§3),
//   - thread-level parallelism control (§4),
//   - the analytical performance model, the discrete-event simulator, and
//     the functional offloading engine that runs real tiny models.
//
// See examples/ for runnable walkthroughs and cmd/lmo-bench for the full
// reproduction of the paper's tables and figures.
package lmoffload

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/faults"
	"repro/internal/hw"
	"repro/internal/model"
	"repro/internal/parallelism"
	"repro/internal/perfmodel"
	"repro/internal/policy"
	"repro/internal/quant"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/threadpool"
	"repro/internal/trace"
)

// Core re-exported types.
type (
	// Platform describes the hardware (GPUs, CPU complex, interconnect).
	Platform = hw.Platform
	// ModelConfig is a transformer geometry.
	ModelConfig = model.Config
	// Workload is a batch-inference job (prompt/generation lengths, block).
	Workload = trace.Workload
	// Strategy is an offloading + quantization decision.
	Strategy = perfmodel.Strategy
	// ExecProfile captures a runtime's execution quality.
	ExecProfile = perfmodel.ExecProfile
	// PolicyOptions tunes the search space.
	PolicyOptions = policy.Options
	// PolicyResult is a chosen strategy with modeled performance.
	PolicyResult = policy.Result
	// ParallelismSetting is a tuned thread configuration (Algorithm 3).
	ParallelismSetting = parallelism.Setting
	// QuantConfig selects group-wise quantization parameters.
	QuantConfig = quant.Config
	// EnginePolicy is the functional engine's executable policy subset.
	EnginePolicy = runtime.Policy
	// EngineStats is the functional engine's accounting.
	EngineStats = runtime.Stats
	// SimResult is a discrete-event simulation outcome.
	SimResult = sim.OffloadResult
	// System is a fully configured framework under comparison.
	System = baselines.System
	// FaultInjector is the deterministic fault source shared by the engine
	// and the simulator.
	FaultInjector = faults.Injector
	// FaultRule configures one injection site.
	FaultRule = faults.Rule
	// FaultSite names an injection point.
	FaultSite = faults.Site
	// RetryConfig bounds the engine's transient-fault retry loop.
	RetryConfig = runtime.RetryConfig
	// GenerationCheckpoint is a resumable snapshot of an in-flight
	// generation.
	GenerationCheckpoint = runtime.Checkpoint
	// SimFaultEvent is a resource outage or slowdown window in the
	// discrete-event simulator.
	SimFaultEvent = sim.FaultEvent
)

// ParseFaultRules parses the flag syntax shared by the cmd tools, e.g.
// "weight-transfer:p=0.2:stall=2ms,worker-panic:p=0.05:n=2".
func ParseFaultRules(spec string) (map[FaultSite]FaultRule, error) { return faults.ParseRules(spec) }

// NewFaultInjector builds a deterministic injector over the given rules.
func NewFaultInjector(seed int64, rules map[FaultSite]FaultRule) (*FaultInjector, error) {
	return faults.New(seed, rules)
}

// Built-in platforms (Table 4).
var (
	SingleGPUA100 = hw.SingleGPUA100
	SingleGPUH100 = hw.SingleGPUH100
	MultiGPUV100  = hw.MultiGPUV100
)

// Built-in model configurations.
var (
	OPT13B   = model.OPT13B
	OPT30B   = model.OPT30B
	OPT66B   = model.OPT66B
	LLaMA13B = model.LLaMA13B
	LLaMA30B = model.LLaMA30B
	LLaMA65B = model.LLaMA65B
	// TinyModel is a configuration small enough to execute for real.
	TinyModel = model.Tiny
)

// Execution profiles.
var (
	FlexGenProfile    = perfmodel.FlexGenProfile
	ZeROProfile       = perfmodel.ZeROProfile
	LMOffloadProfile  = perfmodel.LMOffloadProfile
	DefaultPolicyOpts = policy.DefaultOptions
)

// LoadPlatform reads a custom platform description from JSON (see
// internal/hw's schema: capacities in GiB, bandwidths in GB/s).
func LoadPlatform(r io.Reader) (*Platform, error) { return hw.LoadPlatform(r) }

// LoadModelConfig reads a custom model configuration from JSON.
func LoadModelConfig(r io.Reader) (ModelConfig, error) { return model.LoadConfig(r) }

// NewWorkload builds and validates a workload.
func NewWorkload(promptLen, genLen, gpuBatch, numBatches int) (Workload, error) {
	w := trace.Workload{PromptLen: promptLen, GenLen: genLen, GPUBatch: gpuBatch, NumBatches: numBatches}
	return w, w.Validate()
}

// Plan runs LM-Offload's quantization-aware policy search (§3.2): it picks
// attention placement, wg/cg/hg, and the quantization configuration that
// maximizes modeled throughput within the platform's memory capacities.
func Plan(plat *Platform, mod ModelConfig, work Workload) (PolicyResult, error) {
	return policy.Plan(plat, mod, work, perfmodel.LMOffloadProfile(), policy.DefaultOptions())
}

// PlanWith exposes the full knobs: a custom execution profile and options.
func PlanWith(plat *Platform, mod ModelConfig, work Workload, exec ExecProfile, opts PolicyOptions) (PolicyResult, error) {
	return policy.Plan(plat, mod, work, exec, opts)
}

// EstimateThroughput evaluates one explicit strategy with the analytical
// performance model (Eqs. 1–24), returning tokens/s.
func EstimateThroughput(plat *Platform, mod ModelConfig, work Workload, s Strategy, exec ExecProfile) (float64, error) {
	e, err := perfmodel.New(plat, mod, work, s, exec)
	if err != nil {
		return 0, err
	}
	return e.Throughput(), nil
}

// Simulate runs the discrete-event simulator over a decode window,
// deriving the task overlap from first principles instead of the analytical
// β composition.
func Simulate(plat *Platform, mod ModelConfig, work Workload, s Strategy, exec ExecProfile, steps int) (*SimResult, error) {
	e, err := perfmodel.New(plat, mod, work, s, exec)
	if err != nil {
		return nil, err
	}
	return sim.SimulateDecode(e, steps)
}

// TuneParallelism runs Algorithm 3 for a model/workload on the platform's
// CPU: it derives the operator graph of the offloaded attention, picks
// intra-op and inter-op parallelism, and assigns the leftover threads to the
// load/store tasks.
func TuneParallelism(plat *Platform, mod ModelConfig, work Workload) (ParallelismSetting, error) {
	machine, err := parallelism.NewMachineModel(plat.CPU)
	if err != nil {
		return ParallelismSetting{}, err
	}
	ctrl, err := parallelism.NewController(machine, plat.Link.BandwidthPerDir*0.5)
	if err != nil {
		return ParallelismSetting{}, err
	}
	seq := work.PromptLen + work.GenLen/2
	groups := parallelism.DefaultHeadGroups
	if groups > mod.Heads {
		groups = mod.Heads
	}
	og, err := parallelism.BuildAttentionGraph(mod, work, seq, groups)
	if err != nil {
		return ParallelismSetting{}, err
	}
	transfers := []parallelism.TransferTask{
		{Name: "load_weight", Bytes: float64(mod.LayerWeightBytes()) * 0.5},
		{Name: "load_cache", Bytes: 0},
		{Name: "store_cache", Bytes: 0},
		{Name: "load_activation", Bytes: float64(mod.ActivationBytes(work))},
		{Name: "store_activation", Bytes: float64(mod.ActivationBytes(work))},
	}
	return ctrl.Optimize(og, transfers)
}

// CompareSystems evaluates FlexGen, ZeRO-Inference, and LM-Offload on the
// same (model, workload axis), as Table 3 does, returning the three systems
// in that order.
func CompareSystems(plat *Platform, mod ModelConfig, gpuBatch, promptLen, genLen int) (flexgen, zero, lmoffload *System, err error) {
	if flexgen, err = baselines.FlexGen(plat, mod, gpuBatch, promptLen, genLen); err != nil {
		return nil, nil, nil, err
	}
	if zero, err = baselines.ZeRO(plat, mod, promptLen, genLen); err != nil {
		return nil, nil, nil, err
	}
	if lmoffload, err = baselines.LMOffload(plat, mod, gpuBatch, promptLen, genLen); err != nil {
		return nil, nil, nil, err
	}
	return flexgen, zero, lmoffload, nil
}

// InferenceResult is the output of a functional engine run.
type InferenceResult struct {
	// Tokens holds the generated token IDs per sequence.
	Tokens [][]int
	// Stats is the engine's I/O and task accounting.
	Stats *EngineStats
	// Checkpoint is the last generation snapshot, when checkpointing was
	// enabled via InferenceOptions.
	Checkpoint *GenerationCheckpoint
	// FinalPolicy is the policy the run ended under — it differs from the
	// requested policy when graceful degradation kicked in.
	FinalPolicy EnginePolicy
}

// InferenceOptions extends RunTinyInference with the fault-tolerance knobs.
type InferenceOptions struct {
	// Faults injects deterministic faults at the engine's probe sites.
	Faults *FaultInjector
	// Retry overrides the transient-fault retry policy.
	Retry *RetryConfig
	// CheckpointEvery snapshots the generation every N decode steps (0 =
	// off); the last snapshot is returned in InferenceResult.Checkpoint.
	CheckpointEvery int
}

// RunTinyInference executes a real (tiny) model end to end through the
// offloading engine: real tensors, real group-wise quantization, real
// zig-zag scheduling with asynchronous weight prefetch, and a
// capacity-enforced GPU arena. seed makes the weights and prompts
// deterministic; workers sets the compute pool width.
func RunTinyInference(cfg ModelConfig, pol EnginePolicy, prompts [][]int, genLen int, gpuArenaBytes int64, seed int64, workers int) (*InferenceResult, error) {
	return RunTinyInferenceContext(context.Background(), cfg, pol, prompts, genLen, gpuArenaBytes, seed, workers, nil)
}

// RunTinyInferenceContext is RunTinyInference with cancellation and
// fault-tolerance controls: ctx cancels generation at the next step
// boundary, and opts (optional) wires in fault injection, retry tuning, and
// checkpointing.
func RunTinyInferenceContext(ctx context.Context, cfg ModelConfig, pol EnginePolicy, prompts [][]int, genLen int, gpuArenaBytes int64, seed int64, workers int, opts *InferenceOptions) (*InferenceResult, error) {
	m, err := model.NewModel(rand.New(rand.NewSource(seed)), cfg)
	if err != nil {
		return nil, err
	}
	var pool *threadpool.Pool
	if workers > 1 {
		if pool, err = threadpool.New(workers); err != nil {
			return nil, err
		}
	}
	eng, err := runtime.NewEngine(m, pol, gpuArenaBytes, pool)
	if err != nil {
		return nil, err
	}
	if opts != nil {
		eng.SetFaultInjector(opts.Faults)
		if opts.Retry != nil {
			if err := eng.SetRetryConfig(*opts.Retry); err != nil {
				return nil, err
			}
		}
		if err := eng.EnableCheckpointing(opts.CheckpointEvery); err != nil {
			return nil, err
		}
	}
	tokens, err := eng.Generate(ctx, prompts, genLen)
	if err != nil {
		return nil, err
	}
	return &InferenceResult{
		Tokens:      tokens,
		Stats:       eng.Stats(),
		Checkpoint:  eng.LastCheckpoint(),
		FinalPolicy: eng.Policy(),
	}, nil
}

// Explain walks through the §3.2 decision procedures behind a planned
// policy: the load_weight comparison for weight quantization, the
// load+store comparison for KV quantization, and the attention-placement
// arms, plus the six-task decomposition and its bottleneck.
func Explain(res PolicyResult) (*policy.Explanation, error) {
	return policy.Explain(res)
}

// LatencyCurve returns the per-token, per-layer decode step time for a
// strategy — the growth the KV cache causes across the generation.
func LatencyCurve(plat *Platform, mod ModelConfig, work Workload, s Strategy, exec ExecProfile) ([]float64, error) {
	e, err := perfmodel.New(plat, mod, work, s, exec)
	if err != nil {
		return nil, err
	}
	return e.LatencyCurve(), nil
}

// AnalyzeQuantization quantizes a reference tensor and reports the
// reconstruction error — the accuracy side of the bit-width decision.
func AnalyzeQuantization(t *tensor.Tensor, cfg QuantConfig) (quant.ErrorStats, error) {
	return quant.Analyze(t, cfg)
}

// Describe renders a one-line summary of a planned policy.
func Describe(res PolicyResult) string {
	return fmt.Sprintf("%v -> %.1f tok/s (GPU %.1f GB, CPU %.1f GB)",
		res.Strategy, res.Throughput,
		float64(res.Memory.GPU)/(1<<30), float64(res.Memory.CPU)/(1<<30))
}
